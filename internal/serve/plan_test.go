package serve

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pvmigrate/internal/core"
	"pvmigrate/internal/errs"
)

// recordPlanSession drives a session whose journal contains a plan
// command: a load job pinned to host 1, then a warm evacuation plan of
// that host with placement-picked destinations, then enough advance for
// the plan to settle.
func recordPlanSession(t *testing.T, cfg Config) (*bytes.Buffer, *Core) {
	t.Helper()
	var buf bytes.Buffer
	jw, err := NewJournalWriter(&buf, cfg)
	if err != nil {
		t.Fatalf("journal header: %v", err)
	}
	c := NewCore(cfg, nil)
	journaled := func(kind CommandKind, fill func(*Command)) error {
		cmd := Command{Seq: c.applied + 1, At: c.Now(), Kind: kind}
		if fill != nil {
			fill(&cmd)
		}
		var jerr error
		c.k.AwaitExternal(func() { jerr = jw.Append(cmd) })
		if jerr != nil {
			t.Fatalf("journal append: %v", jerr)
		}
		return c.Apply(cmd)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("session command: %v", err)
		}
	}
	must(journaled(CmdSubmit, func(cmd *Command) {
		cmd.Job = &JobSpec{
			Kind: JobLoad, Workers: 3, WorkerHosts: []int{1},
			RatePerSec: 20, Requests: 400, Seed: 5,
		}
	}))
	must(journaled(CmdAdvance, func(cmd *Command) { cmd.Advance = 2 * time.Second }))
	from := 1
	must(journaled(CmdPlan, func(cmd *Command) {
		cmd.Plan = &PlanArgs{
			Name: "evac-h1",
			Groups: []PlanGroup{{
				Name: "all", FromHost: &from, Mode: "warm",
				Placement: "least-loaded", Concurrency: 2,
			}},
		}
	}))
	must(journaled(CmdAdvance, func(cmd *Command) { cmd.Advance = 5 * time.Minute }))
	return &buf, c
}

func TestPlanCommandExecutesAndReplays(t *testing.T) {
	cfg := Config{Hosts: 4}
	buf, live := recordPlanSession(t, cfg)

	plans := live.Plans()
	if len(plans) != 1 || !plans[0].Done || plans[0].Result == nil {
		t.Fatalf("plans = %+v", plans)
	}
	res := plans[0].Result
	if res.Moved != 3 || res.Failed != 0 {
		t.Fatalf("plan result = %+v", res)
	}
	warm := 0
	for _, r := range live.sys.Records() {
		if r.Mode == core.MigrationWarm {
			warm++
			if r.Frozen == 0 || r.Downtime() <= 0 {
				t.Fatalf("warm record missing freeze accounting: %+v", r)
			}
		}
	}
	if warm != 3 {
		t.Fatalf("warm records = %d, want 3", warm)
	}
	for _, v := range migrationViews(live) {
		if v.Mode == core.MigrationWarm && (v.Rounds < 1 || v.PrecopyBytes <= 0) {
			t.Fatalf("migration view missing warm fields: %+v", v)
		}
	}

	replayed, err := ReplayJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if lf, rf := live.Fingerprint(), replayed.Fingerprint(); lf != rf {
		t.Fatalf("replay fingerprint %016x diverged from live %016x", rf, lf)
	}
	rp := replayed.Plans()
	if len(rp) != 1 || !rp[0].Done || rp[0].Result.Moved != 3 {
		t.Fatalf("replayed plans = %+v", rp)
	}
}

func TestPlanCommandValidation(t *testing.T) {
	c := NewCore(Config{Hosts: 3}, nil)
	apply := func(args *PlanArgs) error {
		return c.Apply(Command{Seq: c.applied + 1, At: c.Now(), Kind: CmdPlan, Plan: args})
	}
	if err := apply(nil); !errs.Is(err, CodeBadRequest) {
		t.Fatalf("nil args: err = %v, want %s", err, CodeBadRequest)
	}
	bogus := 99
	if err := apply(&PlanArgs{Name: "p", Groups: []PlanGroup{{FromHost: &bogus}}}); !errs.Is(err, CodeNotFound) {
		t.Fatalf("bogus host: err = %v, want %s", err, CodeNotFound)
	}
	if err := apply(&PlanArgs{Name: "p", Groups: []PlanGroup{{FromHost: &[]int{0}[0], Mode: "tepid"}}}); !errs.Is(err, CodeBadRequest) {
		t.Fatalf("bad mode: err = %v, want %s", err, CodeBadRequest)
	}
	// Each failed command still landed in the history (journal contract).
	if c.applied != 3 || c.failed != 3 {
		t.Fatalf("applied=%d failed=%d, want 3/3", c.applied, c.failed)
	}
}

// TestReplayAbortsOnUnknownCommand pins the future-proofing contract: a
// journal written by a newer daemon, containing a command kind this build
// does not know, must abort replay with the structured code — never
// silently skip the command and desynchronize everything after it.
func TestReplayAbortsOnUnknownCommand(t *testing.T) {
	cfg := Config{Hosts: 3}
	var buf bytes.Buffer
	jw, err := NewJournalWriter(&buf, cfg)
	if err != nil {
		t.Fatalf("journal header: %v", err)
	}
	append_ := func(cmd Command) {
		if err := jw.Append(cmd); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	append_(Command{Seq: 1, At: 0, Kind: CmdAdvance, Advance: time.Second})
	append_(Command{Seq: 2, At: time.Second, Kind: CommandKind("quantum-entangle")})
	append_(Command{Seq: 3, At: time.Second, Kind: CmdAdvance, Advance: time.Second})

	_, err = ReplayJournal(bytes.NewReader(buf.Bytes()))
	if !errs.Is(err, CodeUnknownCommand) {
		t.Fatalf("replay of future journal: err = %v, want %s", err, CodeUnknownCommand)
	}
	// The live path reports the same structured code (and maps to 400).
	c := NewCore(cfg, nil)
	aerr := c.Apply(Command{Seq: 1, At: 0, Kind: CommandKind("quantum-entangle")})
	if !errs.Is(aerr, CodeUnknownCommand) {
		t.Fatalf("live apply: err = %v, want %s", aerr, CodeUnknownCommand)
	}
	if got := httpStatus(errs.CodeOf(aerr)); got != 400 {
		t.Fatalf("httpStatus = %d, want 400", got)
	}
}

// TestJournalTornPlanCommand: the daemon died mid-append of a plan
// command. The torn tail is dropped and the surviving prefix replays —
// but only because it is the *final* line; the same damage mid-stream is
// corruption.
func TestJournalTornPlanCommand(t *testing.T) {
	cfg := Config{Hosts: 4}
	buf, _ := recordPlanSession(t, cfg)
	whole, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read intact journal: %v", err)
	}

	// Half a plan command: the JSON cuts off inside the groups array.
	tornLine := `{"seq":99,"at":302000000000,"kind":"plan","plan":{"name":"evac-h2","groups":[{"from_host":2,"mo`
	torn := append(append([]byte(nil), buf.Bytes()...), []byte(tornLine)...)
	data, err := ReadJournal(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("read torn journal: %v", err)
	}
	if !data.Torn {
		t.Fatal("torn plan command not reported")
	}
	if len(data.Commands) != len(whole.Commands) {
		t.Fatalf("torn read kept %d commands, want %d", len(data.Commands), len(whole.Commands))
	}
	replayed, err := Replay(data.Config, data.Commands)
	if err != nil {
		t.Fatalf("replay after torn plan command: %v", err)
	}
	if plans := replayed.Plans(); len(plans) != 1 {
		t.Fatalf("replayed plans = %d, want 1 (torn plan dropped)", len(plans))
	}

	// The same torn line mid-stream refuses to load.
	lines := strings.Split(strings.TrimSuffix(string(buf.Bytes()), "\n"), "\n")
	corrupt := append([]string(nil), lines[:2]...)
	corrupt = append(corrupt, tornLine)
	corrupt = append(corrupt, lines[2:]...)
	_, err = ReadJournal(strings.NewReader(strings.Join(corrupt, "\n") + "\n"))
	if !errs.Is(err, CodeJournal) {
		t.Fatalf("mid-stream torn plan: err = %v, want %s", err, CodeJournal)
	}
}

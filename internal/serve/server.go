package serve

import (
	"io"
	"net/http"
	"sync"
	"time"

	"pvmigrate/internal/errs"
	"pvmigrate/internal/ft"
	"pvmigrate/internal/gs"
	"pvmigrate/internal/netsim"
	"pvmigrate/internal/sim"
)

// Options configures a Server.
type Options struct {
	// Config fixes the cluster (journaled as the header).
	Config Config
	// Wire, when non-nil, routes cross-host frames over a real transport.
	Wire netsim.Wire
	// Journal, when non-nil, receives the write-ahead command log.
	Journal io.Writer
	// TickWall, when > 0, starts the pacer: every TickWall of wall time
	// the daemon applies one journaled advance of TickVirtual, so virtual
	// time flows without a client driving it — and the flow is still
	// replayable, because each tick is an ordinary command in the log.
	TickWall time.Duration
	// TickVirtual is the pacer's advance per tick (default 100ms).
	TickVirtual sim.Time
}

// Server is the wall-clock half of the daemon: HTTP handlers serialized by
// one mutex around the Core, a write-ahead journal, and the SSE hub. It is
// an http.Handler; the caller owns the listener.
type Server struct {
	mu   sync.Mutex
	core *Core
	jw   *JournalWriter
	hub  *hub
	mux  *http.ServeMux

	lastTraceSent int
	shuttingDown  bool

	done      chan struct{} // closed by POST /v1/shutdown or Close
	closeOnce sync.Once
	pacerDone chan struct{} // pacer goroutine exited
}

// NewServer builds the cluster and, when a journal sink is given, writes
// the journal header.
func NewServer(opts Options) (*Server, error) {
	s := &Server{
		core: NewCore(opts.Config, opts.Wire),
		hub:  &hub{},
		mux:  http.NewServeMux(),
		done: make(chan struct{}),
	}
	if opts.Journal != nil {
		jw, err := NewJournalWriter(opts.Journal, s.core.Config())
		if err != nil {
			return nil, err
		}
		s.jw = jw
	}
	s.routes()
	if opts.TickWall > 0 {
		tick := opts.TickVirtual
		if tick <= 0 {
			tick = 100 * time.Millisecond
		}
		s.pacerDone = make(chan struct{})
		go s.pace(opts.TickWall, tick)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Done closes when a client posted /v1/shutdown or Close ran; the caller
// then shuts the http.Server down.
func (s *Server) Done() <-chan struct{} { return s.done }

// Close stops the pacer and refuses further commands. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	s.shuttingDown = true
	s.mu.Unlock()
	s.closeOnce.Do(func() { close(s.done) })
	if s.pacerDone != nil {
		<-s.pacerDone
	}
}

// pace maps wall-clock ticks to journaled virtual advances.
func (s *Server) pace(wall time.Duration, tick sim.Time) {
	defer close(s.pacerDone)
	t := time.NewTicker(wall)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			_, _ = s.mutate(CmdAdvance, func(cmd *Command) error {
				cmd.Advance = tick
				return nil
			}, nil)
		}
	}
}

// mutate is the single write path: stamp the command at the current
// virtual instant, journal it (real disk I/O under AwaitExternal, the
// kernel bridge), execute it, publish the resulting frame. fill validates
// and completes the command before it is journaled — a fill error means
// nothing was recorded. after, when non-nil, builds the response under the
// same lock.
func (s *Server) mutate(kind CommandKind, fill func(*Command) error,
	after func(*Core) any) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shuttingDown {
		return nil, errs.New(CodeShutdown, "daemon is shutting down", nil)
	}
	cmd := Command{Seq: s.core.applied + 1, At: s.core.Now(), Kind: kind}
	if fill != nil {
		if err := fill(&cmd); err != nil {
			return nil, err
		}
	}
	if s.jw != nil {
		var jerr error
		s.core.Kernel().AwaitExternal(func() { jerr = s.jw.Append(cmd) })
		if jerr != nil {
			return nil, jerr
		}
	}
	err := s.core.Apply(cmd)
	s.publishLocked()
	if err != nil {
		return nil, err
	}
	var res any
	if after != nil {
		res = after(s.core)
	}
	return res, nil
}

// view runs a read-only projection under the lock.
func (s *Server) view(fn func(*Core) any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(s.core)
}

// publishLocked pushes the post-command frame (snapshot + trace delta) to
// the hub. Caller holds mu.
func (s *Server) publishLocked() {
	ev := StreamEvent{
		Metrics: s.core.Metrics(),
		Trace:   traceViews(s.core.Trace(s.lastTraceSent)),
	}
	s.lastTraceSent = s.core.TraceLen()
	s.hub.publish(ev)
}

// subscribeFrame subscribes to the hub and snapshots the first stream
// frame (no trace delta) in one critical section. publishLocked also runs
// under mu, so no published frame can fall between the snapshot and the
// subscription — a fresh subscriber sees every trace delta after its
// snapshot exactly once.
func (s *Server) subscribeFrame() (chan StreamEvent, StreamEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hub.subscribe(), StreamEvent{Metrics: s.core.Metrics()}
}

// httpStatus maps structured error codes onto HTTP statuses. Codes from
// the layers below the control plane (ft, gs) surface as conflicts: the
// request was well-formed, the cluster's state refused it.
func httpStatus(code errs.Code) int {
	switch code {
	case CodeBadRequest, CodeUnknownCommand:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict,
		ft.CodeNoJob, ft.CodeJobFinished, ft.CodeNoCheckpoint,
		gs.CodeNoDestination, gs.CodeNoMovable:
		return http.StatusConflict
	case CodeShutdown:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"pvmigrate/internal/core"
	"pvmigrate/internal/errs"
)

// routes wires the control plane. Mutations are POSTs through mutate (and
// therefore the journal); queries are GETs through view.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.view(func(c *Core) any { return c.JobViews() }))
	})
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/hosts", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.view(func(c *Core) any { return c.Hosts() }))
	})
	s.mux.HandleFunc("GET /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.view(func(c *Core) any { return c.Tasks() }))
	})
	s.mux.HandleFunc("POST /v1/migrations", s.handleMigrate)
	s.mux.HandleFunc("GET /v1/migrations", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.view(func(c *Core) any { return migrationViews(c) }))
	})
	s.mux.HandleFunc("POST /v1/plans", s.handlePlan)
	s.mux.HandleFunc("GET /v1/plans", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.view(func(c *Core) any { return planViews(c) }))
	})
	s.mux.HandleFunc("POST /v1/faults", s.handleFault)
	s.mux.HandleFunc("POST /v1/owner", s.handleOwner)
	s.mux.HandleFunc("POST /v1/rollback", s.handleRollback)
	s.mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	s.mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.view(func(c *Core) any { return c.Metrics() }))
	})
	s.mux.HandleFunc("GET /v1/metrics/stream", func(w http.ResponseWriter, r *http.Request) {
		s.serveStream(w, r, func(ev StreamEvent) any { return ev })
	})
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/trace/stream", func(w http.ResponseWriter, r *http.Request) {
		s.serveStream(w, r, func(ev StreamEvent) any {
			if len(ev.Trace) == 0 {
				return nil
			}
			return ev.Trace
		})
	})
	s.mux.HandleFunc("GET /v1/journal", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.view(func(c *Core) any {
			return map[string]any{"config": c.Config(), "commands": c.History()}
		}))
	})
	s.mux.HandleFunc("GET /v1/fingerprint", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.view(func(c *Core) any {
			return map[string]any{
				"fingerprint": c.FingerprintHex(),
				"virtual_ms":  ms(c.Now()),
				"commands":    c.applied,
			}
		}))
	})
	s.mux.HandleFunc("POST /v1/shutdown", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.shuttingDown = true
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
		s.closeOnce.Do(func() { close(s.done) })
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if !decode(w, r, &spec) {
		return
	}
	res, err := s.mutate(CmdSubmit, func(cmd *Command) error {
		cmd.Job = &spec
		return nil
	}, func(c *Core) any {
		return c.jobView(c.jobs[len(c.jobs)-1])
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, res)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, errs.New(CodeBadRequest, "job id must be an integer", err))
		return
	}
	res := s.view(func(c *Core) any {
		j := c.Job(id)
		if j == nil {
			return nil
		}
		v := c.jobView(j)
		return &v
	})
	jv, ok := res.(*JobView)
	if !ok || jv == nil {
		writeErr(w, errs.Newf(CodeNotFound, "no job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, jv)
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var args MigrateArgs
	if !decode(w, r, &args) {
		return
	}
	res, err := s.mutate(CmdMigrate, func(cmd *Command) error {
		cmd.Migrate = &args
		return nil
	}, func(c *Core) any {
		return map[string]any{"ok": true, "metrics": c.Metrics()}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var args PlanArgs
	if !decode(w, r, &args) {
		return
	}
	res, err := s.mutate(CmdPlan, func(cmd *Command) error {
		cmd.Plan = &args
		return nil
	}, func(c *Core) any {
		return planView(c.plans[len(c.plans)-1])
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, res)
}

func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	var args FaultArgs
	if !decode(w, r, &args) {
		return
	}
	res, err := s.mutate(CmdFault, func(cmd *Command) error {
		cmd.Fault = &args
		return nil
	}, func(c *Core) any {
		return map[string]any{"ok": true, "metrics": c.Metrics()}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleOwner(w http.ResponseWriter, r *http.Request) {
	var args OwnerArgs
	if !decode(w, r, &args) {
		return
	}
	res, err := s.mutate(CmdOwner, func(cmd *Command) error {
		cmd.Owner = &args
		return nil
	}, func(c *Core) any {
		return map[string]any{"ok": true, "metrics": c.Metrics()}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	res, err := s.mutate(CmdRollback, nil, func(c *Core) any {
		return map[string]any{"ok": true, "epoch": c.mgr.Epoch()}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Ms int64 `json:"ms"`
	}
	if !decode(w, r, &body) {
		return
	}
	res, err := s.mutate(CmdAdvance, func(cmd *Command) error {
		cmd.Advance = time.Duration(body.Ms) * time.Millisecond
		return nil
	}, func(c *Core) any {
		return c.Metrics()
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	since := 0
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, errs.New(CodeBadRequest, "since must be a non-negative integer", err))
			return
		}
		since = n
	}
	writeJSON(w, http.StatusOK, s.view(func(c *Core) any {
		return map[string]any{
			"events": traceViews(c.Trace(since)),
			"next":   c.TraceLen(),
		}
	}))
}

// MigrationView is the wire form of one migration record.
type MigrationView struct {
	VP             int                  `json:"vp"`
	NewTID         int                  `json:"new_tid"`
	From           int                  `json:"from"`
	To             int                  `json:"to"`
	Reason         core.MigrationReason `json:"reason"`
	Mode           core.MigrationMode   `json:"mode"`
	StartMs        int64                `json:"start_ms"`
	OffSourceMs    int64                `json:"off_source_ms"`
	ReintegratedMs int64                `json:"reintegrated_ms"`
	FrozenMs       int64                `json:"frozen_ms"`
	DowntimeMs     int64                `json:"downtime_ms"`
	StateBytes     int                  `json:"state_bytes"`
	Rounds         int                  `json:"rounds,omitempty"`
	PrecopyBytes   int                  `json:"precopy_bytes,omitempty"`
}

func migrationViews(c *Core) []MigrationView {
	recs := c.sys.Records()
	out := make([]MigrationView, 0, len(recs))
	for _, r := range recs {
		out = append(out, MigrationView{
			VP: int(r.VP), NewTID: int(r.NewTID), From: r.From, To: r.To,
			Reason: r.Reason, Mode: r.Mode,
			StartMs: ms(r.Start), OffSourceMs: ms(r.OffSource),
			ReintegratedMs: ms(r.Reintegrated), FrozenMs: ms(r.Frozen),
			DowntimeMs: ms(r.Downtime()), StateBytes: r.StateBytes,
			Rounds: r.Rounds, PrecopyBytes: r.PrecopyBytes,
		})
	}
	return out
}

// PlanView is the wire form of one submitted plan's status.
type PlanView struct {
	ID            int             `json:"id"`
	Name          string          `json:"name"`
	SubmittedAtMs int64           `json:"submitted_at_ms"`
	Done          bool            `json:"done"`
	Moved         int             `json:"moved,omitempty"`
	Failed        int             `json:"failed,omitempty"`
	ElapsedMs     int64           `json:"elapsed_ms,omitempty"`
	Groups        []PlanGroupView `json:"groups,omitempty"`
}

// PlanGroupView is one settled group of a plan.
type PlanGroupView struct {
	Name     string            `json:"name"`
	Moved    int               `json:"moved"`
	Failed   int               `json:"failed"`
	Outcomes []PlanOutcomeView `json:"outcomes"`
}

// PlanOutcomeView is the fate of one planned migration.
type PlanOutcomeView struct {
	VP   int    `json:"vp"`
	Dest int    `json:"dest"`
	Err  string `json:"err,omitempty"`
}

func planView(st *PlanStatus) PlanView {
	v := PlanView{
		ID: st.ID, Name: st.Name,
		SubmittedAtMs: ms(st.SubmittedAt), Done: st.Done,
	}
	if st.Result != nil {
		v.Moved = st.Result.Moved
		v.Failed = st.Result.Failed
		v.ElapsedMs = ms(st.Result.Elapsed)
		for _, g := range st.Result.Groups {
			gv := PlanGroupView{Name: g.Name, Moved: g.Moved, Failed: g.Failed}
			for _, o := range g.Outcomes {
				gv.Outcomes = append(gv.Outcomes, PlanOutcomeView{
					VP: int(o.VP), Dest: o.Dest, Err: o.Err,
				})
			}
			v.Groups = append(v.Groups, gv)
		}
	}
	return v
}

func planViews(c *Core) []PlanView {
	out := make([]PlanView, 0, len(c.plans))
	for _, st := range c.plans {
		out = append(out, planView(st))
	}
	return out
}

// decode parses a JSON request body; on failure it writes the error
// envelope and reports false.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, errs.New(CodeBadRequest, "malformed JSON body", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before touching the ResponseWriter: an unencodable view (a
	// NaN that slipped into a float field, say) must surface as a 500
	// envelope, not a 200 with an empty body.
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(errs.ToEnvelope(
			errs.New(CodeInternal, "response failed to encode", err)))
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}

// writeErr renders the structured error envelope with the status its code
// maps to.
func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(errs.CodeOf(err)), errs.ToEnvelope(err))
}

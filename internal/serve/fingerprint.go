package serve

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Fingerprint condenses everything schedule-visible about a session into
// one FNV-1a 64 value: the clock, the command counts, every trace event,
// every migration and recovery record, the checkpoint commit history, and
// each job's outcome. A live session and its headless journal replay must
// produce equal fingerprints — that equality is the determinism contract
// the journal tests pin. Kernel.ExternalWaits is deliberately excluded:
// the live daemon crosses the bridge once per journal append, the replay
// never does, and neither crossing moves the virtual schedule.
func (c *Core) Fingerprint() uint64 {
	h := fnv.New64a()
	put := func(format string, args ...any) {
		fmt.Fprintf(h, format, args...)
		h.Write([]byte{0})
	}
	put("now=%d applied=%d failed=%d", int64(c.k.Now()), c.applied, c.failed)
	for _, e := range c.log.Events() {
		put("ev %d %s %s %s", int64(e.At), e.Actor, e.Stage, e.Detail)
	}
	for _, r := range c.sys.Records() {
		put("mig %+v", r)
	}
	for _, r := range c.mgr.Records() {
		put("rec %+v", r)
	}
	// A session without plans folds nothing here, so journals recorded
	// before the plan command existed keep their fingerprints.
	for _, p := range c.plans {
		put("plan %d %s done=%t", p.ID, p.Name, p.Done)
		if p.Result == nil {
			continue
		}
		put("plan-res moved=%d failed=%d elapsed=%d",
			p.Result.Moved, p.Result.Failed, int64(p.Result.Elapsed))
		for _, g := range p.Result.Groups {
			for _, o := range g.Outcomes {
				put("plan-out %s %d->%d %s", g.Name, int(o.VP), o.Dest, o.Err)
			}
		}
	}
	put("ckpt=%d committed=%d", c.mgr.Checkpoints(), c.mgr.CommittedIteration())
	for _, cm := range c.mgr.Store().Commits() {
		put("commit %s@%d", cm.Key, cm.Epoch)
	}
	for _, j := range c.jobs {
		put("job %d %s at=%d", j.ID, j.Kind, int64(j.SubmittedAt))
		switch j.Kind {
		case JobOpt:
			out := j.Opt.Out()
			put("opt done=%t err=%t fin=%d", out.Done, out.Err != nil, int64(out.FinishedAt))
			if out.Result != nil {
				put("opt iter=%d loss=%d", out.Result.Iterations,
					math.Float64bits(out.Result.FinalLoss))
			}
		case JobLoad:
			lj := j.Load
			put("load done=%t err=%t completed=%d violations=%d fin=%d",
				lj.Done, lj.Err != nil, lj.Completed, lj.Violations, int64(lj.FinishedAt))
			for _, v := range lj.Latency.Values() {
				put("lat %d", math.Float64bits(v))
			}
		}
	}
	return h.Sum64()
}

// FingerprintHex is the fingerprint formatted for the API and the CLI.
func (c *Core) FingerprintHex() string {
	return fmt.Sprintf("%016x", c.Fingerprint())
}

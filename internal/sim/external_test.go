package sim

import "testing"

// AwaitExternal must run the wait inline with the clock frozen: virtual
// time is identical before and after, the wait executes exactly once, and
// the audit counter advances.
func TestAwaitExternalFreezesClock(t *testing.T) {
	k := NewKernel()
	var ranAt Time
	ran := 0
	k.Schedule(5, func() {
		before := k.Now()
		k.AwaitExternal(func() {
			ran++
			ranAt = k.Now()
		})
		if k.Now() != before {
			t.Errorf("clock moved across AwaitExternal: %v -> %v", before, k.Now())
		}
	})
	k.Run()
	if ran != 1 {
		t.Fatalf("wait ran %d times, want 1", ran)
	}
	if ranAt != 5 {
		t.Errorf("wait observed Now()=%v, want 5", ranAt)
	}
	if got := k.ExternalWaits(); got != 1 {
		t.Errorf("ExternalWaits() = %d, want 1", got)
	}
}

// The hook works from proc context too, and later events still run at their
// scheduled virtual times (the pause has no simulated cost).
func TestAwaitExternalFromProc(t *testing.T) {
	k := NewKernel()
	var after Time
	k.Spawn("p", func(p *Proc) {
		if err := p.Sleep(10); err != nil {
			t.Errorf("sleep: %v", err)
		}
		k.AwaitExternal(func() {})
		if err := p.Sleep(10); err != nil {
			t.Errorf("sleep: %v", err)
		}
		after = p.Now()
	})
	k.Run()
	if after != 20 {
		t.Errorf("proc finished at %v, want 20", after)
	}
	if got := k.ExternalWaits(); got != 1 {
		t.Errorf("ExternalWaits() = %d, want 1", got)
	}
}

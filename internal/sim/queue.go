package sim

import "errors"

// ErrQueueClosed is returned by Queue operations after Close.
var ErrQueueClosed = errors.New("sim: queue closed")

// Queue is a FIFO channel between procs. A capacity of 0 means unbounded.
// Get blocks while the queue is empty; Put blocks while a bounded queue is
// full. Both are interrupt points.
//
// Items live in a power-of-two ring buffer, so a steady put/get stream
// recycles the same backing array instead of sliding an append window down
// a slice (which reallocates every time the window reaches the end).
type Queue[T any] struct {
	k      *Kernel
	buf    []T // ring storage; len(buf) is always 0 or a power of two
	head   int // index of the oldest item
	n      int // number of queued items
	cap    int // bound; <= 0 means unbounded
	closed bool

	notEmpty *Cond
	notFull  *Cond
}

// NewQueue returns a queue bound to k. cap <= 0 means unbounded.
func NewQueue[T any](k *Kernel, cap int) *Queue[T] {
	return &Queue[T]{k: k, cap: cap, notEmpty: NewCond(k), notFull: NewCond(k)}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return q.n }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// push appends v to the ring, growing it when full.
func (q *Queue[T]) push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// grow doubles the ring (minimum 8 slots) and unrolls it to start at 0.
func (q *Queue[T]) grow() {
	newCap := 2 * len(q.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	q.copyOut(buf[:q.n])
	q.buf = buf
	q.head = 0
}

// copyOut copies the queued items, oldest first, into dst (len(dst) == q.n).
func (q *Queue[T]) copyOut(dst []T) {
	if q.n == 0 {
		return
	}
	first := copy(dst, q.buf[q.head:min(q.head+q.n, len(q.buf))])
	copy(dst[first:], q.buf[:q.n-first])
}

// pop removes and returns the oldest item. Callers must check q.n > 0.
func (q *Queue[T]) pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero // release the reference
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// Put appends v, blocking while a bounded queue is full.
func (q *Queue[T]) Put(p *Proc, v T) error {
	for q.cap > 0 && q.n >= q.cap && !q.closed {
		if err := q.notFull.Wait(p); err != nil {
			return err
		}
	}
	if q.closed {
		return ErrQueueClosed
	}
	q.push(v)
	q.notEmpty.Signal()
	return nil
}

// TryPut appends v without blocking; it reports whether the item was
// accepted. Kernel-context callbacks (which cannot block) use this.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || (q.cap > 0 && q.n >= q.cap) {
		return false
	}
	q.push(v)
	q.notEmpty.Signal()
	return true
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) (T, error) {
	var zero T
	for q.n == 0 {
		if q.closed {
			return zero, ErrQueueClosed
		}
		if err := q.notEmpty.Wait(p); err != nil {
			return zero, err
		}
	}
	v := q.pop()
	q.notFull.Signal()
	return v, nil
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.pop()
	q.notFull.Signal()
	return v, true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// Drain removes and returns all queued items.
func (q *Queue[T]) Drain() []T {
	if q.n == 0 {
		return nil
	}
	out := make([]T, q.n)
	q.copyOut(out)
	clear(q.buf)
	q.head = 0
	q.n = 0
	q.notFull.Broadcast()
	return out
}

// Close marks the queue closed. Blocked and future Gets on an empty queue
// and all Puts return ErrQueueClosed; items already queued can still be
// retrieved.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

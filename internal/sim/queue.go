package sim

import "errors"

// ErrQueueClosed is returned by Queue operations after Close.
var ErrQueueClosed = errors.New("sim: queue closed")

// Queue is a FIFO channel between procs. A capacity of 0 means unbounded.
// Get blocks while the queue is empty; Put blocks while a bounded queue is
// full. Both are interrupt points.
type Queue[T any] struct {
	k        *Kernel
	items    []T
	cap      int
	closed   bool
	notEmpty *Cond
	notFull  *Cond
}

// NewQueue returns a queue bound to k. cap <= 0 means unbounded.
func NewQueue[T any](k *Kernel, cap int) *Queue[T] {
	return &Queue[T]{k: k, cap: cap, notEmpty: NewCond(k), notFull: NewCond(k)}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Put appends v, blocking while a bounded queue is full.
func (q *Queue[T]) Put(p *Proc, v T) error {
	for q.cap > 0 && len(q.items) >= q.cap && !q.closed {
		if err := q.notFull.Wait(p); err != nil {
			return err
		}
	}
	if q.closed {
		return ErrQueueClosed
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return nil
}

// TryPut appends v without blocking; it reports whether the item was
// accepted. Kernel-context callbacks (which cannot block) use this.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || (q.cap > 0 && len(q.items) >= q.cap) {
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return true
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) (T, error) {
	var zero T
	for len(q.items) == 0 {
		if q.closed {
			return zero, ErrQueueClosed
		}
		if err := q.notEmpty.Wait(p); err != nil {
			return zero, err
		}
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.notFull.Signal()
	return v, nil
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.notFull.Signal()
	return v, true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// Drain removes and returns all queued items.
func (q *Queue[T]) Drain() []T {
	out := q.items
	q.items = nil
	q.notFull.Broadcast()
	return out
}

// Close marks the queue closed. Blocked and future Gets on an empty queue
// and all Puts return ErrQueueClosed; items already queued can still be
// retrieved.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

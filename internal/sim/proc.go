package sim

import (
	"errors"
	"fmt"
)

type procState int

const (
	pBlocked procState = iota // waiting for a wake event
	pRunning                  // currently executing
	pDone                     // body returned
)

// Interrupted is the error returned by blocking primitives when the proc
// received an asynchronous interrupt (see Proc.Interrupt). The migration
// systems use interrupts to model Unix signals: a migration request can
// reach a VP at an arbitrary point of its execution.
type Interrupted struct {
	// Reason is the value passed to Interrupt, typically identifying the
	// signal source (e.g. a migration command).
	Reason any
}

func (e *Interrupted) Error() string { return fmt.Sprintf("sim: interrupted: %v", e.Reason) }

// IsInterrupted reports whether err is (or wraps) an *Interrupted error and
// returns it.
func IsInterrupted(err error) (*Interrupted, bool) {
	var ie *Interrupted
	if errors.As(err, &ie) {
		return ie, true
	}
	return nil, false
}

// Proc is a simulated thread of control. Its body function runs on a
// dedicated goroutine, but the kernel guarantees that at most one proc
// executes at a time, so proc code needs no locking when touching shared
// simulation state.
type Proc struct {
	k     *Kernel
	id    int
	name  string
	state procState
	gen   uint64 // increments around every block; stale wakes are dropped
	// hand is the proc's single reusable handoff channel: the kernel sends
	// to resume the proc, the proc sends to yield back. Unbuffered, so each
	// hand-over is a rendezvous and the two sides strictly alternate.
	hand     chan struct{}
	body     func(*Proc)
	panicked any
	doneCond *Cond

	intrPending bool
	intrReason  any
	intrMasked  bool
}

// Spawn creates a proc named name executing body and schedules it to start
// at the current virtual time (after already queued events).
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	return k.SpawnAt(k.now, name, body)
}

// SpawnAt creates a proc that starts at the given absolute virtual time.
func (k *Kernel) SpawnAt(at Time, name string, body func(*Proc)) *Proc {
	k.nextPID++
	p := &Proc{
		k:     k,
		id:    k.nextPID,
		name:  name,
		state: pBlocked,
		hand:  make(chan struct{}),
		body:  body,
	}
	p.doneCond = NewCond(k)
	k.procs = append(k.procs, p)
	go p.main()
	k.scheduleWake(p, at, p.gen)
	return p
}

func (p *Proc) main() {
	<-p.hand // first dispatch
	defer func() {
		if r := recover(); r != nil {
			p.panicked = r
		}
		p.state = pDone
		p.hand <- struct{}{}
	}()
	p.body(p)
}

// Kernel returns the kernel this proc belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the proc's name, fixed at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the proc's unique id (1-based, in spawn order).
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Done reports whether the proc's body has returned.
func (p *Proc) Done() bool { return p.state == pDone }

// block suspends the proc until a wake event targeting the current
// generation fires. wake, when non-zero, is the timer wake belonging to
// this block; it is canceled if the proc is woken by something else (e.g. an
// interrupt) so it cannot fire late and corrupt a future block. Canceling
// the wake that actually fired is a no-op (its cancel cell was already
// recycled), so the unconditional Cancel below is safe.
func (p *Proc) block(wake Timer) error {
	if p.k.running != p {
		panic(fmt.Sprintf("sim: blocking call on proc %q from outside its own context", p.name))
	}
	if p.intrPending && !p.intrMasked {
		wake.Cancel()
		return p.takeInterrupt()
	}
	p.state = pBlocked
	p.hand <- struct{}{}
	<-p.hand
	p.gen++ // any wake events targeting the old generation are now stale
	wake.Cancel()
	if p.intrPending && !p.intrMasked {
		return p.takeInterrupt()
	}
	return nil
}

func (p *Proc) takeInterrupt() error {
	reason := p.intrReason
	p.intrPending = false
	p.intrReason = nil
	return &Interrupted{Reason: reason}
}

// Sleep suspends the proc for d of virtual time. It returns nil when the
// full duration elapsed and *Interrupted when cut short by an interrupt.
func (p *Proc) Sleep(d Time) error {
	if d <= 0 {
		return p.Yield()
	}
	wake := p.k.scheduleWakeTimer(p, p.k.now+d, p.gen)
	return p.block(wake)
}

// SleepUntil suspends the proc until the absolute virtual time t.
func (p *Proc) SleepUntil(t Time) error {
	if t <= p.k.now {
		return p.Yield()
	}
	wake := p.k.scheduleWakeTimer(p, t, p.gen)
	return p.block(wake)
}

// Yield re-queues the proc at the current time, letting other ready procs
// and events run first. Like all blocking calls it is an interrupt point.
func (p *Proc) Yield() error {
	wake := p.k.scheduleWakeTimer(p, p.k.now, p.gen)
	return p.block(wake)
}

// Join blocks until other's body has returned.
func (p *Proc) Join(other *Proc) error {
	for !other.Done() {
		if err := other.doneCond.Wait(p); err != nil {
			return err
		}
	}
	return nil
}

// Interrupt delivers an asynchronous interrupt to p, modelling a Unix
// signal. If p is blocked it is woken immediately and its blocking call
// returns *Interrupted; if p is running (or the interrupt is masked), the
// interrupt stays pending and the next unmasked blocking call returns
// *Interrupted without blocking. Interrupting a finished proc is a no-op.
// Only a single interrupt is held pending; a second one overwrites the
// reason, matching Unix signal coalescing.
func (p *Proc) Interrupt(reason any) {
	if p.state == pDone {
		return
	}
	p.intrPending = true
	p.intrReason = reason
	if p.state == pBlocked && !p.intrMasked {
		p.k.scheduleWake(p, p.k.now, p.gen)
	}
}

// MaskInterrupts defers interrupt delivery until UnmaskInterrupts. The
// MPVM/UPVM run-time libraries use this to model their re-entrancy flag:
// a VP cannot be migrated while executing inside the message-passing
// library, so migration signals are held pending until the library call
// completes.
func (p *Proc) MaskInterrupts() { p.intrMasked = true }

// UnmaskInterrupts re-enables interrupt delivery. A pending interrupt is
// not delivered here; it surfaces at the next blocking call, matching the
// "check the flag on the way out of the library" implementation in MPVM.
func (p *Proc) UnmaskInterrupts() { p.intrMasked = false }

// InterruptsMasked reports whether interrupts are currently masked.
func (p *Proc) InterruptsMasked() bool { return p.intrMasked }

// InterruptPending reports whether an interrupt is waiting for delivery.
func (p *Proc) InterruptPending() bool { return p.intrPending }

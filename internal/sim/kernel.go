package sim

import (
	"fmt"
	"sort"
)

// event is a single entry on the kernel's event queue, stored by value in
// an implicit 4-ary min-heap. An event either wakes a blocked Proc
// (p != nil) or invokes a kernel-context callback (fn != nil). Callbacks
// run inline in the event loop and must not block.
//
// Events are plain records, not heap allocations: Schedule and the proc
// wake path are zero-alloc in steady state (see DESIGN.md §7). Cancelation
// state lives out-of-line in the kernel's cell pool (cell >= 0) because
// heap records move as the heap sifts; cell == -1 marks a non-cancelable
// event (Signal/Broadcast/Interrupt/Spawn wakes, whose staleness is
// handled by the proc generation check alone).
type event struct {
	at   Time
	prio uint64 // tie-break priority (0 unless a tie-breaker is installed)
	seq  uint64 // final tie-breaker: schedule order
	gen  uint64 // wake generation the event targets (stale wakes are skipped)
	fn   func()
	p    *Proc
	cell int32 // cancel-cell index, -1 when the event cannot be canceled
}

// eventBefore is the queue's total order: (time, tie-break prio, seq).
// seq is unique per kernel, so the order is total and the heap's arity
// cannot influence dispatch order.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// cancelCell is the out-of-line cancelation state of one in-flight
// cancelable event. Cells are pooled and recycled through a free list; the
// stamp increments at every recycle so a stale Timer handle (canceling
// after its event already fired) can never touch the slot's next tenant.
type cancelCell struct {
	stamp    uint32
	canceled bool
}

// Timer is a handle to a scheduled cancelable event. The zero Timer is
// valid and inert. Timers are plain values: copying one copies the handle,
// not the event.
type Timer struct {
	k     *Kernel
	cell  int32
	stamp uint32
}

// Cancel prevents the timer's event from firing. Canceling the zero Timer,
// an already fired, or an already canceled timer is a no-op.
func (t Timer) Cancel() {
	if t.k == nil {
		return
	}
	c := &t.k.cells[t.cell]
	if c.stamp == t.stamp {
		c.canceled = true
	}
}

// heapArity is the fan-out of the implicit event heap. Four keeps the tree
// half as deep as a binary heap (fewer sift levels per push/pop) while the
// children of a node still share one or two cache lines.
const heapArity = 4

// Kernel is the discrete-event simulation engine. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	events  []event // implicit 4-ary min-heap ordered by eventBefore
	running *Proc
	procs   []*Proc
	nextPID int
	stopped bool

	// Cancel-cell pool. freeCells is the free list; in steady state every
	// schedule/pop pair recycles a cell and neither slice grows.
	cells     []cancelCell
	freeCells []int32

	// externalWaits counts AwaitExternal calls (external.go): real-world
	// I/O completions the virtual clock paused for.
	externalWaits uint64

	// tiebreak, when non-nil, assigns each event a pseudo-random priority
	// that precedes seq in the heap ordering. Equal-time events are then
	// dispatched in a seed-determined permutation instead of schedule order:
	// one seed is one reproducible schedule, and a sweep of seeds is a
	// search over interleavings (the chaos explorer's kernel hook).
	tiebreak *RNG
}

// NewKernel returns a kernel with the clock at time zero and no events.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetTieBreakSeed installs a seeded tie-breaker: events scheduled for the
// same virtual time run in a pseudo-random order that is a pure function of
// the seed and the schedule history. Without a tie-breaker (the default),
// equal-time events run in schedule order, bit-identical to prior behavior.
// Install before scheduling anything; re-seeding mid-run starts a fresh
// stream for events scheduled afterwards.
func (k *Kernel) SetTieBreakSeed(seed uint64) { k.tiebreak = NewRNG(seed) }

// ClearTieBreak restores strict schedule-order dispatch for events scheduled
// after the call.
func (k *Kernel) ClearTieBreak() { k.tiebreak = nil }

// nextPrio draws the tie-break priority for a newly scheduled event.
func (k *Kernel) nextPrio() uint64 {
	if k.tiebreak == nil {
		return 0
	}
	return k.tiebreak.Uint64()
}

// Stop makes Run return after the event currently being processed.
func (k *Kernel) Stop() { k.stopped = true }

// EventsScheduled reports how many events have been scheduled since the
// kernel was created. Every Schedule/ScheduleAt/wake consumes one sequence
// number, so this is the natural throughput denominator for benchmarks.
func (k *Kernel) EventsScheduled() uint64 { return k.seq }

// heapPush inserts e, sifting up with the hole-propagation idiom: parents
// move down until e's slot is found, then e is written once.
func (k *Kernel) heapPush(e event) {
	// lint:alloc amortized heap growth; steady state reuses capacity (BenchmarkKernelScheduleDispatch measures 0 allocs/op)
	h := append(k.events, event{})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !eventBefore(&e, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	k.events = h
}

// heapPop removes and returns the minimum event.
func (k *Kernel) heapPop() event {
	h := k.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the fn/p references
	h = h[:n]
	k.events = h
	if n > 0 {
		i := 0
		for {
			first := i*heapArity + 1
			if first >= n {
				break
			}
			min := first
			end := first + heapArity
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if eventBefore(&h[c], &h[min]) {
					min = c
				}
			}
			if !eventBefore(&h[min], &last) {
				break
			}
			h[i] = h[min]
			i = min
		}
		h[i] = last
	}
	return top
}

// newCell takes a cancel cell from the free list (or grows the pool) and
// returns its index and current stamp.
func (k *Kernel) newCell() (int32, uint32) {
	if n := len(k.freeCells); n > 0 {
		idx := k.freeCells[n-1]
		k.freeCells = k.freeCells[:n-1]
		return idx, k.cells[idx].stamp
	}
	k.cells = append(k.cells, cancelCell{})
	return int32(len(k.cells) - 1), 0
}

// retireCell reads a popped event's canceled flag and recycles its cell.
// The stamp bump invalidates every outstanding Timer handle to the slot.
func (k *Kernel) retireCell(idx int32) (canceled bool) {
	c := &k.cells[idx]
	canceled = c.canceled
	c.canceled = false
	c.stamp++
	k.freeCells = append(k.freeCells, idx)
	return canceled
}

// Schedule arranges for fn to run in kernel context at now+d. fn must not
// block; it may spawn procs, signal conditions and schedule further events.
func (k *Kernel) Schedule(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return k.scheduleAt(k.now+d, fn)
}

// ScheduleAt is Schedule with an absolute virtual time. Times in the past
// are clamped to now.
func (k *Kernel) ScheduleAt(at Time, fn func()) Timer {
	if at < k.now {
		at = k.now
	}
	return k.scheduleAt(at, fn)
}

func (k *Kernel) scheduleAt(at Time, fn func()) Timer {
	k.seq++
	idx, stamp := k.newCell()
	k.heapPush(event{at: at, prio: k.nextPrio(), seq: k.seq, fn: fn, cell: idx})
	return Timer{k: k, cell: idx, stamp: stamp}
}

// scheduleWake enqueues a non-cancelable wake event for p targeting its
// current blocking generation (Cond signals, interrupts, spawn starts).
// Staleness is handled entirely by the generation check at dispatch.
func (k *Kernel) scheduleWake(p *Proc, at Time, gen uint64) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	k.heapPush(event{at: at, prio: k.nextPrio(), seq: k.seq, p: p, gen: gen, cell: -1})
}

// scheduleWakeTimer enqueues a cancelable wake for p — the timer wake a
// blocking call owns (Sleep, Yield) and cancels when the proc is woken by
// something else, so the leftover event cannot fire late.
func (k *Kernel) scheduleWakeTimer(p *Proc, at Time, gen uint64) Timer {
	if at < k.now {
		at = k.now
	}
	k.seq++
	idx, stamp := k.newCell()
	k.heapPush(event{at: at, prio: k.nextPrio(), seq: k.seq, p: p, gen: gen, cell: idx})
	return Timer{k: k, cell: idx, stamp: stamp}
}

// Run processes events until the queue is empty or Stop is called. It
// returns the number of procs that remain blocked (a non-zero return with an
// empty queue usually indicates a deadlock in the simulated system).
func (k *Kernel) Run() int {
	return k.run(-1)
}

// RunUntil processes all events with timestamps <= deadline, then sets the
// clock to deadline. It returns the number of procs still blocked.
func (k *Kernel) RunUntil(deadline Time) int {
	n := k.run(deadline)
	if k.now < deadline {
		k.now = deadline
	}
	return n
}

func (k *Kernel) run(deadline Time) int {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		if deadline >= 0 && k.events[0].at > deadline {
			break
		}
		e := k.heapPop()
		if e.cell >= 0 && k.retireCell(e.cell) {
			continue // canceled events do not advance the clock
		}
		if e.at > k.now {
			k.now = e.at
		}
		if e.fn != nil {
			e.fn()
			continue
		}
		p := e.p
		if p.state != pBlocked || p.gen != e.gen {
			continue // stale wake
		}
		k.dispatch(p)
	}
	return k.blockedCount()
}

// dispatch resumes p and waits until it blocks again or finishes. Kernel
// and proc hand control back and forth over the proc's single unbuffered
// handoff channel; at most one of the two is ever runnable between the
// rendezvous points, so the schedule stays deterministic.
func (k *Kernel) dispatch(p *Proc) {
	k.running = p
	p.state = pRunning
	p.hand <- struct{}{}
	<-p.hand
	k.running = nil
	if p.panicked != nil {
		panic(fmt.Sprintf("sim: proc %q panicked: %v", p.name, p.panicked)) // lint:alloc panic path, simulation is already dead
	}
	if p.state == pDone {
		p.doneCond.Broadcast()
	}
}

func (k *Kernel) blockedCount() int {
	n := 0
	for _, p := range k.procs {
		if p.state == pBlocked {
			n++
		}
	}
	return n
}

// Blocked returns the names of procs that are currently blocked, sorted.
// Intended for debugging deadlocks in tests.
func (k *Kernel) Blocked() []string {
	var names []string
	for _, p := range k.procs {
		if p.state == pBlocked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// Running returns the proc currently executing, or nil when the kernel
// itself is running (event callbacks, in-between events).
func (k *Kernel) Running() *Proc { return k.running }

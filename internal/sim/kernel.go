package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// event is a single entry on the kernel's priority queue. An event either
// wakes a blocked Proc (p != nil) or invokes a kernel-context callback
// (fn != nil). Callbacks run inline in the event loop and must not block.
type event struct {
	at       Time
	prio     uint64 // tie-break priority (0 unless a tie-breaker is installed)
	seq      uint64 // final tie-breaker: schedule order
	fn       func()
	p        *Proc
	gen      uint64 // wake generation the event targets (stale wakes are skipped)
	canceled bool
	index    int // heap index, -1 when popped
}

// Timer is a handle to a scheduled callback that can be canceled.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from running. Canceling an already
// fired or already canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event simulation engine. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	running *Proc
	yield   chan struct{} // proc -> kernel: "I have blocked or finished"
	procs   []*Proc
	nextPID int
	stopped bool

	// tiebreak, when non-nil, assigns each event a pseudo-random priority
	// that precedes seq in the heap ordering. Equal-time events are then
	// dispatched in a seed-determined permutation instead of schedule order:
	// one seed is one reproducible schedule, and a sweep of seeds is a
	// search over interleavings (the chaos explorer's kernel hook).
	tiebreak *RNG
}

// NewKernel returns a kernel with the clock at time zero and no events.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetTieBreakSeed installs a seeded tie-breaker: events scheduled for the
// same virtual time run in a pseudo-random order that is a pure function of
// the seed and the schedule history. Without a tie-breaker (the default),
// equal-time events run in schedule order, bit-identical to prior behavior.
// Install before scheduling anything; re-seeding mid-run starts a fresh
// stream for events scheduled afterwards.
func (k *Kernel) SetTieBreakSeed(seed uint64) { k.tiebreak = NewRNG(seed) }

// ClearTieBreak restores strict schedule-order dispatch for events scheduled
// after the call.
func (k *Kernel) ClearTieBreak() { k.tiebreak = nil }

// nextPrio draws the tie-break priority for a newly scheduled event.
func (k *Kernel) nextPrio() uint64 {
	if k.tiebreak == nil {
		return 0
	}
	return k.tiebreak.Uint64()
}

// Stop makes Run return after the event currently being processed.
func (k *Kernel) Stop() { k.stopped = true }

// Schedule arranges for fn to run in kernel context at now+d. fn must not
// block; it may spawn procs, signal conditions and schedule further events.
func (k *Kernel) Schedule(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.scheduleAt(k.now+d, fn)
}

// ScheduleAt is Schedule with an absolute virtual time. Times in the past
// are clamped to now.
func (k *Kernel) ScheduleAt(at Time, fn func()) *Timer {
	if at < k.now {
		at = k.now
	}
	return k.scheduleAt(at, fn)
}

func (k *Kernel) scheduleAt(at Time, fn func()) *Timer {
	k.seq++
	e := &event{at: at, prio: k.nextPrio(), seq: k.seq, fn: fn}
	heap.Push(&k.events, e)
	return &Timer{ev: e}
}

// scheduleWake enqueues a wake event for p targeting its current blocking
// generation.
func (k *Kernel) scheduleWake(p *Proc, at Time, gen uint64) *event {
	if at < k.now {
		at = k.now
	}
	k.seq++
	e := &event{at: at, prio: k.nextPrio(), seq: k.seq, p: p, gen: gen}
	heap.Push(&k.events, e)
	return e
}

// Run processes events until the queue is empty or Stop is called. It
// returns the number of procs that remain blocked (a non-zero return with an
// empty queue usually indicates a deadlock in the simulated system).
func (k *Kernel) Run() int {
	return k.run(-1)
}

// RunUntil processes all events with timestamps <= deadline, then sets the
// clock to deadline. It returns the number of procs still blocked.
func (k *Kernel) RunUntil(deadline Time) int {
	n := k.run(deadline)
	if k.now < deadline {
		k.now = deadline
	}
	return n
}

func (k *Kernel) run(deadline Time) int {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		if deadline >= 0 && k.events[0].at > deadline {
			break
		}
		e := heap.Pop(&k.events).(*event)
		if e.canceled {
			continue
		}
		if e.at > k.now {
			k.now = e.at
		}
		if e.fn != nil {
			e.fn()
			continue
		}
		p := e.p
		if p.state != pBlocked || p.gen != e.gen {
			continue // stale wake
		}
		k.dispatch(p)
	}
	return k.blockedCount()
}

// dispatch resumes p and waits until it blocks again or finishes.
func (k *Kernel) dispatch(p *Proc) {
	k.running = p
	p.state = pRunning
	p.run <- struct{}{}
	<-k.yield
	k.running = nil
	if p.panicked != nil {
		panic(fmt.Sprintf("sim: proc %q panicked: %v", p.name, p.panicked))
	}
	if p.state == pDone {
		p.doneCond.Broadcast()
	}
}

func (k *Kernel) blockedCount() int {
	n := 0
	for _, p := range k.procs {
		if p.state == pBlocked {
			n++
		}
	}
	return n
}

// Blocked returns the names of procs that are currently blocked, sorted.
// Intended for debugging deadlocks in tests.
func (k *Kernel) Blocked() []string {
	var names []string
	for _, p := range k.procs {
		if p.state == pBlocked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// Running returns the proc currently executing, or nil when the kernel
// itself is running (event callbacks, in-between events).
func (k *Kernel) Running() *Proc { return k.running }

// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock by processing a priority queue of
// events. Simulated activities run as Procs: cooperative coroutines backed
// by goroutines, of which at most one executes at any instant. A Proc
// performs simulated work by blocking in kernel primitives (Sleep, Cond.Wait,
// Queue.Get, ...) which suspend the goroutine and hand control back to the
// event loop.
//
// All of the higher layers of this repository — the network model, the
// workstation cluster, the PVM substrate and the three migration systems —
// are built on this kernel, so virtual timestamps are globally consistent
// and every run is bit-for-bit reproducible.
package sim

import "time"

// Time is an instant on the virtual clock, expressed as the duration since
// the start of the simulation (time zero). Using time.Duration gives
// convenient literals (3 * time.Second) and formatting for free.
type Time = time.Duration

// Seconds converts a virtual instant or duration to floating-point seconds.
func Seconds(t Time) float64 { return t.Seconds() }

// FromSeconds converts floating-point seconds to a virtual duration.
func FromSeconds(s float64) Time { return Time(s * float64(time.Second)) }

package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// Property: regardless of the order in which events are scheduled, they fire
// in non-decreasing time order, and same-time events fire in schedule order.
func TestPropEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel()
		type firing struct {
			at  Time
			idx int
		}
		var fired []firing
		for i, d := range delays {
			i, at := i, Time(d)*time.Millisecond
			k.Schedule(at, func() { fired = append(fired, firing{k.Now(), i}) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].idx < fired[i-1].idx {
				return false
			}
		}
		// Every event fired at exactly its requested time.
		for _, f := range fired {
			if Time(delays[f.idx])*time.Millisecond != f.at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a queue conserves items — everything put is got exactly once, in
// FIFO order per producer, for arbitrary producer/consumer timing.
func TestPropQueueConservation(t *testing.T) {
	f := func(counts []uint8, seed uint64) bool {
		if len(counts) == 0 || len(counts) > 8 {
			counts = []uint8{3, 5, 2}
		}
		k := NewKernel()
		rng := NewRNG(seed)
		q := NewQueue[[2]int](k, 0)
		total := 0
		for pi, c := range counts {
			pi, c := pi, int(c)%16
			total += c
			jitter := Time(rng.Intn(50)) * time.Millisecond
			k.Spawn("prod", func(p *Proc) {
				for j := 0; j < c; j++ {
					p.Sleep(jitter)
					q.Put(p, [2]int{pi, j})
				}
			})
		}
		got := make(map[[2]int]int)
		perProducerLast := make(map[int]int)
		for i := range perProducerLast {
			perProducerLast[i] = -1
		}
		ok := true
		k.Spawn("cons", func(p *Proc) {
			for n := 0; n < total; n++ {
				v, err := q.Get(p)
				if err != nil {
					ok = false
					return
				}
				got[v]++
				last, seen := perProducerLast[v[0]]
				if !seen {
					last = -1
				}
				if v[1] != last+1 {
					ok = false // per-producer FIFO violated
				}
				perProducerLast[v[0]] = v[1]
			}
		})
		if blocked := k.Run(); blocked != 0 {
			return false
		}
		if !ok {
			return false
		}
		n := 0
		for _, c := range got {
			if c != 1 {
				return false
			}
			n += c
		}
		return n == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: RNG streams are deterministic per seed and produce values in
// valid ranges.
func TestPropRNG(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 100; i++ {
			u := a.Float64()
			if u != b.Float64() || u < 0 || u >= 1 {
				return false
			}
			n := a.Intn(97)
			if n != b.Intn(97) || n < 0 || n >= 97 {
				return false
			}
			e := a.ExpFloat64()
			if e != b.ExpFloat64() || e < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n)%64 + 1
		p := NewRNG(seed).Perm(size)
		if len(p) != size {
			return false
		}
		s := append([]int(nil), p...)
		sort.Ints(s)
		for i := range s {
			if s[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGMoments(t *testing.T) {
	r := NewRNG(12345)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("uniform mean = %f", mean)
	}
	variance := sumSq/n - mean*mean
	if variance < 0.08 || variance > 0.09 {
		t.Fatalf("uniform variance = %f, want ~1/12", variance)
	}
	var esum float64
	for i := 0; i < n; i++ {
		esum += r.ExpFloat64()
	}
	if m := esum / n; m < 0.98 || m > 1.02 {
		t.Fatalf("exp mean = %f", m)
	}
	var nsum, nsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		nsum += v
		nsq += v * v
	}
	if m := nsum / n; m < -0.02 || m > 0.02 {
		t.Fatalf("normal mean = %f", m)
	}
	if v := nsq / n; v < 0.97 || v > 1.03 {
		t.Fatalf("normal variance = %f", v)
	}
}

package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (xorshift64* core with a splitmix64 seed scrambler). Each simulated
// component owns its own stream so that adding randomness to one component
// never perturbs another — a standard technique for reproducible
// discrete-event experiments.
type RNG struct {
	s uint64
	// cached second normal variate for NormFloat64 (Box-Muller pair)
	haveNorm bool
	norm     float64
}

// NewRNG returns a generator seeded from seed; any seed (including 0) gives
// a usable stream.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the stream.
func (r *RNG) Seed(seed uint64) {
	// splitmix64 scramble so nearby seeds give unrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	r.s = z
	r.haveNorm = false
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal value (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.haveNorm {
		r.haveNorm = false
		return r.norm
	}
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(u1))
		r.norm = m * math.Sin(2*math.Pi*u2)
		r.haveNorm = true
		return m * math.Cos(2*math.Pi*u2)
	}
}

// ExpDuration returns an exponentially distributed virtual duration with
// the given mean. Used by load and owner-activity generators.
func (r *RNG) ExpDuration(mean Time) Time {
	return Time(float64(mean) * r.ExpFloat64())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

package sim

import (
	"testing"
	"time"
)

// The substrate's own performance: how fast the DES kernel processes events
// and context-switches procs. These bound how large a simulated scenario
// stays interactive.

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := NewKernel()
	for i := 0; i < b.N; i++ {
		k.Schedule(time.Duration(i), func() {})
	}
	b.ResetTimer()
	k.Run()
}

func BenchmarkProcContextSwitch(b *testing.B) {
	k := NewKernel()
	k.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	b.ResetTimer()
	k.Run()
}

func BenchmarkQueueHandoff(b *testing.B) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	k.Spawn("prod", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
	})
	k.Spawn("cons", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	b.ResetTimer()
	k.Run()
}

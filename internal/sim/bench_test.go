package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"pvmigrate/internal/sweep"
)

// The substrate's own performance: how fast the DES kernel processes events
// and context-switches procs. These bound how large a simulated scenario
// stays interactive. Every benchmark reports allocs/op because the hot-path
// contract is zero steady-state allocation (DESIGN.md §7); a regression here
// shows up as allocs/op > 0 before it shows up as ns/op.

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := NewKernel()
	for i := 0; i < b.N; i++ {
		k.Schedule(time.Duration(i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkKernelScheduleDispatch is the steady-state schedule+dispatch
// cycle: a fixed population of in-flight events, each firing reschedules
// itself until the budget is spent. Unlike EventThroughput (which grows the
// heap to b.N before the timer starts), this holds the heap at a constant
// size, so the timed region covers exactly one heapPush + one heapPop per
// op with the free-list warm — the path every simulated scenario lives on,
// and the one that must run at 0 allocs/op.
func BenchmarkKernelScheduleDispatch(b *testing.B) {
	const population = 64
	k := NewKernel()
	left := b.N
	var tick func()
	tick = func() {
		left--
		if left >= population {
			k.Schedule(time.Microsecond, tick)
		}
	}
	for i := 0; i < population && i < b.N; i++ {
		k.Schedule(time.Duration(i), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

func BenchmarkProcContextSwitch(b *testing.B) {
	k := NewKernel()
	k.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

func BenchmarkQueueHandoff(b *testing.B) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	k.Spawn("prod", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
	})
	k.Spawn("cons", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// --- baseline snapshot -----------------------------------------------------

// benchStat is one benchmark's footprint in the baseline file.
type benchStat struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type sweepStat struct {
	Workers    int     `json:"workers"`
	Seeds      int     `json:"seeds"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

type kernelBaseline struct {
	GoMaxProcs       int       `json:"go_max_procs"`
	EventsPerSec     float64   `json:"events_per_sec"`
	EventThroughput  benchStat `json:"event_throughput"`
	ScheduleDispatch benchStat `json:"schedule_dispatch"`
	ContextSwitch    benchStat `json:"context_switch"`
	QueueHandoff     benchStat `json:"queue_handoff"`
	SeedSweep        sweepStat `json:"seed_sweep"`
}

// timeRun measures one kernel run of n operations: build populates the
// kernel, then the whole Run is timed with the host clock and malloc counts
// from runtime.MemStats bracket it. This is a hand-rolled harness rather
// than testing.Benchmark because the latter takes the testing package's
// global benchmark lock and deadlocks when invoked from inside a running
// benchmark (BenchmarkKernelBaseline is itself a benchmark).
func timeRun(n int, build func(k *Kernel, n int)) benchStat {
	k := NewKernel()
	build(k, n)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	k.Run()
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)
	return benchStat{
		NsPerOp:     float64(dur.Nanoseconds()) / float64(n),
		AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / int64(n),
	}
}

// sweepWorkload is one self-contained seeded run: a kernel, a few procs, a
// couple thousand events. Small enough that a sweep finishes in seconds,
// large enough that per-run kernel cost dominates the runner's overhead.
func sweepWorkload(seed uint64) uint64 {
	k := NewKernel()
	acc := seed
	for i := 0; i < 32; i++ {
		d := time.Duration(1+(seed+uint64(i))%97) * time.Microsecond
		k.Schedule(d, func() {})
	}
	k.Spawn("worker", func(p *Proc) {
		for i := 0; i < 2000; i++ {
			acc = acc*6364136223846793005 + 1442695040888963407
			p.Sleep(time.Duration(1+acc%251) * time.Microsecond)
		}
	})
	k.Run()
	return acc
}

// measureSweep times the same seed set serially and on GOMAXPROCS workers.
// On a single-core host the speedup is ~1.0 by construction; the number is
// recorded so multi-core runners show the scaling (the determinism half of
// the contract is pinned by TestParallelSweepMatchesSerial in
// internal/chaos, not here).
func measureSweep(seeds int) sweepStat {
	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	serial := sweep.Seeds(seeds, 1, sweepWorkload)
	serialDur := time.Since(start)
	start = time.Now()
	parallel := sweep.Seeds(seeds, workers, sweepWorkload)
	parallelDur := time.Since(start)
	for i := range serial {
		if serial[i] != parallel[i] {
			panic(fmt.Sprintf("sweep baseline: seed %d diverged between serial and parallel runs", i))
		}
	}
	return sweepStat{
		Workers:    workers,
		Seeds:      seeds,
		SerialMs:   float64(serialDur.Microseconds()) / 1e3,
		ParallelMs: float64(parallelDur.Microseconds()) / 1e3,
		Speedup:    float64(serialDur) / float64(parallelDur),
	}
}

// The baseline's mirror of each benchmark body, parameterised on an
// explicit op count instead of b.N.

func runEventThroughput(n int) benchStat {
	return timeRun(n, func(k *Kernel, n int) {
		for i := 0; i < n; i++ {
			k.Schedule(time.Duration(i), func() {})
		}
	})
}

func runScheduleDispatch(n int) benchStat {
	return timeRun(n, func(k *Kernel, n int) {
		const population = 64
		left := n
		var tick func()
		tick = func() {
			left--
			if left >= population {
				k.Schedule(time.Microsecond, tick)
			}
		}
		for i := 0; i < population && i < n; i++ {
			k.Schedule(time.Duration(i), tick)
		}
	})
}

func runContextSwitch(n int) benchStat {
	return timeRun(n, func(k *Kernel, n int) {
		k.Spawn("switcher", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Yield()
			}
		})
	})
}

func runQueueHandoff(n int) benchStat {
	return timeRun(n, func(k *Kernel, n int) {
		q := NewQueue[int](k, 0)
		k.Spawn("prod", func(p *Proc) {
			for i := 0; i < n; i++ {
				q.Put(p, i)
			}
		})
		k.Spawn("cons", func(p *Proc) {
			for i := 0; i < n; i++ {
				q.Get(p)
			}
		})
	})
}

var baselineOnce sync.Once

// BenchmarkKernelBaseline measures the full hot-path suite and writes the
// snapshot to BENCH_KERNEL.json (or $BENCH_KERNEL_OUT). CI runs it as a
// smoke step via `go test -bench=Kernel -benchtime=100x ./internal/sim`
// and uploads the file as an artifact; the committed repo-root
// BENCH_KERNEL.json is the long-form baseline. The op counts are fixed —
// large enough to amortise startup, small enough that the whole snapshot
// takes a few seconds.
func BenchmarkKernelBaseline(b *testing.B) {
	baselineOnce.Do(func() {
		base := kernelBaseline{
			GoMaxProcs:       runtime.GOMAXPROCS(0),
			EventThroughput:  runEventThroughput(500_000),
			ScheduleDispatch: runScheduleDispatch(500_000),
			ContextSwitch:    runContextSwitch(200_000),
			QueueHandoff:     runQueueHandoff(300_000),
			SeedSweep:        measureSweep(64),
		}
		base.EventsPerSec = 1e9 / base.EventThroughput.NsPerOp
		out := os.Getenv("BENCH_KERNEL_OUT")
		if out == "" {
			out = "BENCH_KERNEL.json"
		}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			b.Fatalf("marshal baseline: %v", err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			b.Fatalf("write %s: %v", out, err)
		}
		b.Logf("kernel baseline written to %s: %s", out, data)
	})
}

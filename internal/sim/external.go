package sim

// External-completion hook: the bridge the real-wire transport backend
// (internal/netwire) uses to marry wall-clock I/O to the virtual clock.
//
// The kernel is the only clock in the system. When a simulated delivery
// depends on a real-world side effect — a payload that went out over an
// actual kernel socket and must be read back — the simulation cannot
// proceed past the delivery event until that side effect completes, and it
// must not let virtual time drift while waiting: wall time spent blocked on
// a syscall has no simulated cost, because the *modelled* wire time was
// already charged by the netsim link model. AwaitExternal is that pause
// button.

// AwaitExternal runs wait, which may block on real-world I/O, with the
// virtual clock frozen: no events are dispatched and Now() does not advance
// until wait returns. It may be called from kernel context (event
// callbacks) or from a running proc — both already execute inline in the
// single-threaded event loop, so simply not returning until the side effect
// completes is exactly the required semantics. The kernel counts calls (see
// ExternalWaits) so tests can audit that a wire-backed run actually crossed
// the bridge.
//
// wait must eventually return; a lost wire frame would otherwise hang the
// simulation, which is why the netwire backend bounds every wait with a
// generous wall-clock timeout and surfaces expiry as an error instead of
// blocking forever.
func (k *Kernel) AwaitExternal(wait func()) {
	k.externalWaits++
	wait()
}

// ExternalWaits returns the number of AwaitExternal calls made so far —
// zero for a purely in-memory run, and one per wire-delivered frame when a
// real transport backend is attached.
func (k *Kernel) ExternalWaits() uint64 { return k.externalWaits }

package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(3*time.Second, func() { got = append(got, 3) })
	k.Schedule(1*time.Second, func() { got = append(got, 1) })
	k.Schedule(2*time.Second, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", k.Now())
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.Schedule(time.Second, func() { fired = true })
	tm.Cancel()
	k.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		if err := p.Sleep(5 * time.Second); err != nil {
			t.Errorf("Sleep: %v", err)
		}
		wake = p.Now()
	})
	if n := k.Run(); n != 0 {
		t.Fatalf("blocked procs: %d", n)
	}
	if wake != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", wake)
	}
}

func TestSleepUntilPastIsYield(t *testing.T) {
	k := NewKernel()
	k.Schedule(10*time.Second, func() {})
	done := false
	k.SpawnAt(10*time.Second, "p", func(p *Proc) {
		if err := p.SleepUntil(3 * time.Second); err != nil {
			t.Errorf("SleepUntil: %v", err)
		}
		if p.Now() != 10*time.Second {
			t.Errorf("time moved backwards: %v", p.Now())
		}
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("proc never ran")
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	k := NewKernel()
	var trace []string
	mk := func(name string, period Time) func(*Proc) {
		return func(p *Proc) {
			for i := 0; i < 3; i++ {
				if err := p.Sleep(period); err != nil {
					t.Errorf("%s: %v", name, err)
				}
				trace = append(trace, name)
			}
		}
	}
	k.Spawn("a", mk("a", 2*time.Second))
	k.Spawn("b", mk("b", 3*time.Second))
	k.Run()
	// a wakes at 2,4,6; b at 3,6,9. At t=6, b's wake was scheduled at t=3
	// and a's at t=4, so the FIFO tie-break runs b first.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestJoin(t *testing.T) {
	k := NewKernel()
	child := k.Spawn("child", func(p *Proc) { p.Sleep(7 * time.Second) })
	var joinedAt Time
	k.Spawn("parent", func(p *Proc) {
		if err := p.Join(child); err != nil {
			t.Errorf("Join: %v", err)
		}
		joinedAt = p.Now()
	})
	k.Run()
	if joinedAt != 7*time.Second {
		t.Fatalf("joined at %v, want 7s", joinedAt)
	}
}

func TestJoinAlreadyDone(t *testing.T) {
	k := NewKernel()
	child := k.Spawn("child", func(p *Proc) {})
	ok := false
	k.SpawnAt(time.Second, "parent", func(p *Proc) {
		if err := p.Join(child); err != nil {
			t.Errorf("Join: %v", err)
		}
		ok = true
	})
	k.Run()
	if !ok {
		t.Fatal("join on finished proc did not return")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, d := range []Time{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v", k.Now())
	}
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event lost: %v", fired)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 0; i < 10; i++ {
		k.Schedule(Time(i)*time.Second, func() {
			count++
			if count == 4 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 4 {
		t.Fatalf("processed %d events after Stop, want 4", count)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	k.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	if n := k.Run(); n != 1 {
		t.Fatalf("blocked = %d, want 1", n)
	}
	if names := k.Blocked(); len(names) != 1 || names[0] != "stuck" {
		t.Fatalf("Blocked() = %v", names)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) { panic("bad") })
	defer func() {
		if recover() == nil {
			t.Fatal("proc panic was swallowed")
		}
	}()
	k.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		q := NewQueue[string](k, 0)
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			k.Spawn("prod-"+name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(time.Duration(i+1) * time.Millisecond)
					q.Put(p, name)
				}
			})
		}
		k.Spawn("cons", func(p *Proc) {
			for n := 0; n < 15; n++ {
				v, err := q.Get(p)
				if err != nil {
					return
				}
				trace = append(trace, v)
			}
		})
		k.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != 15 || len(b) != 15 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a, b)
		}
	}
}

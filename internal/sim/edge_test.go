package sim

import (
	"testing"
	"time"
)

func TestSpawnAtFuture(t *testing.T) {
	k := NewKernel()
	var startedAt Time
	k.SpawnAt(42*time.Second, "late", func(p *Proc) { startedAt = p.Now() })
	k.Run()
	if startedAt != 42*time.Second {
		t.Fatalf("started at %v", startedAt)
	}
}

func TestScheduleNegativeDelayClamped(t *testing.T) {
	k := NewKernel()
	k.Schedule(10*time.Second, func() {})
	fired := Time(-1)
	k.Schedule(5*time.Second, func() {
		k.Schedule(-3*time.Second, func() { fired = k.Now() })
	})
	k.Run()
	if fired != 5*time.Second {
		t.Fatalf("negative-delay event fired at %v", fired)
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	k := NewKernel()
	var fired Time
	k.Schedule(5*time.Second, func() {
		k.ScheduleAt(time.Second, func() { fired = k.Now() })
	})
	k.Run()
	if fired != 5*time.Second {
		t.Fatalf("past event fired at %v", fired)
	}
}

func TestInterruptBeforeFirstDispatch(t *testing.T) {
	// Interrupt delivered while the proc is still waiting to start: the
	// pending interrupt surfaces at its first blocking call.
	k := NewKernel()
	var got any
	p := k.SpawnAt(5*time.Second, "late", func(p *Proc) {
		err := p.Sleep(time.Second)
		if ie, ok := IsInterrupted(err); ok {
			got = ie.Reason
		}
	})
	k.Schedule(time.Second, func() { p.Interrupt("early") })
	k.Run()
	if got != "early" {
		t.Fatalf("got %v", got)
	}
}

func TestQueuePutInterrupted(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 1)
	q.TryPut(1) // full
	var err error
	p := k.Spawn("prod", func(p *Proc) {
		err = q.Put(p, 2)
	})
	k.Schedule(time.Second, func() { p.Interrupt("stop") })
	k.Run()
	if _, ok := IsInterrupted(err); !ok {
		t.Fatalf("err = %v", err)
	}
	if q.Len() != 1 {
		t.Fatalf("queue corrupted: len %d", q.Len())
	}
}

func TestQueueClosedPut(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	q.Close()
	var err error
	k.Spawn("p", func(p *Proc) { err = q.Put(p, 1) })
	k.Run()
	if err != ErrQueueClosed {
		t.Fatalf("err = %v", err)
	}
	if q.TryPut(1) {
		t.Fatal("TryPut to closed queue succeeded")
	}
}

func TestCondLenCountsWaiters(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) { c.Wait(p) })
	}
	k.RunUntil(time.Second)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Broadcast()
	k.Run()
	if c.Len() != 0 {
		t.Fatalf("Len after broadcast = %d", c.Len())
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(2.5) != 2500*time.Millisecond {
		t.Fatal("FromSeconds wrong")
	}
	if Seconds(1500*time.Millisecond) != 1.5 {
		t.Fatal("Seconds wrong")
	}
}

func TestRunningAccessor(t *testing.T) {
	k := NewKernel()
	var inside, outside *Proc
	p := k.Spawn("me", func(pp *Proc) { inside = k.Running() })
	k.Run()
	outside = k.Running()
	if inside != p || outside != nil {
		t.Fatalf("Running: inside=%v outside=%v", inside, outside)
	}
}

func TestMaskedInterruptDoesNotWakeSleep(t *testing.T) {
	k := NewKernel()
	var woke Time
	p := k.Spawn("m", func(p *Proc) {
		p.MaskInterrupts()
		p.Sleep(10 * time.Second)
		woke = p.Now()
	})
	k.Schedule(time.Second, func() { p.Interrupt("x") })
	k.Run()
	if woke != 10*time.Second {
		t.Fatalf("masked sleep woke at %v", woke)
	}
	if p.InterruptsMasked() {
		// The body never unmasked; after done this is moot but the flag
		// should still read true.
		_ = p
	}
}

func TestYieldLetsOthersRun(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

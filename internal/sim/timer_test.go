package sim

import (
	"testing"
	"time"
)

// The cancel-cell mechanics behind value Timers: a handle survives the heap
// moving its event, firing retires the cell exactly once, and a stale
// handle onto a recycled cell is a stamp-mismatch no-op.

func TestTimerCancelPreventsFiring(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.Schedule(5*time.Second, func() { fired = true })
	k.Schedule(10*time.Second, func() {})
	tm.Cancel()
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want 10s", k.Now())
	}
}

func TestTimerCancelledEventDoesNotAdvanceClock(t *testing.T) {
	k := NewKernel()
	tm := k.Schedule(30*time.Second, func() {})
	var at Time
	k.Schedule(10*time.Second, func() {
		tm.Cancel()
		k.Schedule(5*time.Second, func() { at = k.Now() })
	})
	k.Run()
	// The cancelled event at t=30s must be dropped before the clock moves:
	// quiescence is at the last live event, not at the tombstone.
	if at != 15*time.Second || k.Now() != 15*time.Second {
		t.Fatalf("clock = %v (inner fire at %v), want 15s", k.Now(), at)
	}
}

func TestTimerCancelAfterFireIsNoOp(t *testing.T) {
	k := NewKernel()
	tm := k.Schedule(time.Second, func() {})
	k.Run()

	// tm's cell is now on the free list. The next Schedule recycles it with
	// a bumped stamp; the stale handle must not cancel the new event.
	fired := false
	k.Schedule(time.Second, func() { fired = true })
	tm.Cancel()
	tm.Cancel() // double-cancel of a stale handle is equally inert
	k.Run()
	if !fired {
		t.Fatal("stale Timer.Cancel killed an event on the recycled cell")
	}
}

func TestTimerZeroValueCancelIsNoOp(t *testing.T) {
	var tm Timer
	tm.Cancel() // must not panic with no kernel attached

	k := NewKernel()
	fired := false
	k.Schedule(time.Second, func() { fired = true })
	tm.Cancel()
	k.Run()
	if !fired {
		t.Fatal("zero-value Cancel affected a live event")
	}
}

func TestTimerCancelManyAmongLive(t *testing.T) {
	// Cancel every other timer in a large population so cancellation has to
	// cope with cells retiring and recycling while the heap is hot.
	k := NewKernel()
	const n = 1000
	fired := make([]bool, n)
	timers := make([]Timer, n)
	for i := 0; i < n; i++ {
		i := i
		timers[i] = k.Schedule(time.Duration(1+i%17)*time.Millisecond, func() { fired[i] = true })
	}
	for i := 0; i < n; i += 2 {
		timers[i].Cancel()
	}
	k.Run()
	for i := range fired {
		if want := i%2 == 1; fired[i] != want {
			t.Fatalf("event %d: fired=%v, want %v", i, fired[i], want)
		}
	}
}

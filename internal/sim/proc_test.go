package sim

import (
	"testing"
	"time"
)

func TestInterruptWakesSleeper(t *testing.T) {
	k := NewKernel()
	var errAt Time
	var reason any
	p := k.Spawn("sleeper", func(p *Proc) {
		err := p.Sleep(time.Hour)
		ie, ok := IsInterrupted(err)
		if !ok {
			t.Errorf("Sleep returned %v, want Interrupted", err)
			return
		}
		errAt, reason = p.Now(), ie.Reason
	})
	k.Schedule(3*time.Second, func() { p.Interrupt("migrate") })
	k.Run()
	if errAt != 3*time.Second || reason != "migrate" {
		t.Fatalf("interrupted at %v reason %v", errAt, reason)
	}
}

func TestInterruptPendingDeliveredAtNextBlock(t *testing.T) {
	k := NewKernel()
	var order []string
	p := k.Spawn("worker", func(p *Proc) {
		p.Sleep(time.Second)
		order = append(order, "compute") // "running" when interrupt arrives below
		p.Sleep(time.Second)             // interrupt already pending: returns immediately
		order = append(order, "after")
	})
	// Deliver while p is runnable at the same instant but before its wake:
	// schedule at 1s ahead of the sleep wake? Instead interrupt while blocked
	// is covered above; here test pending-overwrite semantics.
	k.Schedule(500*time.Millisecond, func() {
		p.Interrupt("first")
		p.Interrupt("second") // coalesces, overwrites
	})
	k.Run()
	if len(order) != 0 {
		// Sleep(1s) was interrupted at 0.5s; body then errors out? No — body
		// ignores the error and proceeds. Re-derive expectations:
		// Sleep #1 interrupted at 0.5s -> "compute" appended, Sleep #2 runs
		// uninterrupted.
		if order[0] != "compute" {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestInterruptCoalesces(t *testing.T) {
	k := NewKernel()
	var got []any
	p := k.Spawn("w", func(p *Proc) {
		for {
			err := p.Sleep(time.Hour)
			if ie, ok := IsInterrupted(err); ok {
				got = append(got, ie.Reason)
				if ie.Reason == "stop" {
					return
				}
				continue
			}
			return
		}
	})
	k.Schedule(time.Second, func() {
		p.Interrupt("a")
		p.Interrupt("b") // overwrites "a" before delivery
	})
	k.Schedule(2*time.Second, func() { p.Interrupt("stop") })
	k.Run()
	if len(got) != 2 || got[0] != "b" || got[1] != "stop" {
		t.Fatalf("got %v, want [b stop]", got)
	}
}

func TestInterruptMasking(t *testing.T) {
	k := NewKernel()
	var deliveredAt Time
	p := k.Spawn("lib", func(p *Proc) {
		p.MaskInterrupts() // entering the run-time library
		if err := p.Sleep(10 * time.Second); err != nil {
			t.Errorf("masked sleep interrupted: %v", err)
		}
		p.UnmaskInterrupts()
		err := p.Sleep(10 * time.Second) // pending interrupt delivered here
		if _, ok := IsInterrupted(err); !ok {
			t.Errorf("pending interrupt not delivered: %v", err)
			return
		}
		deliveredAt = p.Now()
	})
	k.Schedule(2*time.Second, func() { p.Interrupt("migrate") })
	k.Run()
	// The interrupt arrived at 2s but must only surface after the masked
	// sleep completes at 10s, at the next blocking call (immediately).
	if deliveredAt != 10*time.Second {
		t.Fatalf("delivered at %v, want 10s", deliveredAt)
	}
}

func TestInterruptDoneProcNoop(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("quick", func(p *Proc) {})
	k.Schedule(time.Second, func() { p.Interrupt("late") })
	k.Run() // must not panic or deadlock
	if !p.Done() {
		t.Fatal("proc not done")
	}
}

func TestStaleWakeDoesNotCorruptLaterBlock(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	var wakes []Time
	p := k.Spawn("w", func(p *Proc) {
		// First wait is interrupted; the cond entry goes stale.
		if _, ok := IsInterrupted(c.Wait(p)); !ok {
			t.Error("want interrupt on first wait")
		}
		wakes = append(wakes, p.Now())
		// Second wait must only complete on the *second* broadcast.
		if err := c.Wait(p); err != nil {
			t.Errorf("second wait: %v", err)
		}
		wakes = append(wakes, p.Now())
	})
	k.Schedule(1*time.Second, func() { p.Interrupt("x") })
	k.Schedule(2*time.Second, func() { c.Broadcast() }) // wakes only stale entry
	k.Schedule(3*time.Second, func() { c.Broadcast() })
	k.Run()
	if len(wakes) != 2 || wakes[0] != time.Second {
		t.Fatalf("wakes = %v", wakes)
	}
	// The stale broadcast at 2s targets the old generation; the proc had
	// re-waited by then, so the 2s broadcast legitimately wakes the *new*
	// wait (it was queued after the re-wait). Accept 2s or 3s but the proc
	// must not hang and must not wake at 1s twice.
	if wakes[1] != 2*time.Second && wakes[1] != 3*time.Second {
		t.Fatalf("second wake at %v", wakes[1])
	}
}

func TestBlockingFromWrongContextPanics(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("a", func(p *Proc) { p.Sleep(time.Second) })
	k.Spawn("b", func(q *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("cross-proc blocking call did not panic")
			}
		}()
		p.Sleep(time.Second) // b calling a blocking op on a's proc
	})
	defer func() { recover() }() // kernel re-panics proc b's panic; absorb
	k.Run()
}

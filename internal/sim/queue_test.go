package sim

import (
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	var got []int
	k.Spawn("prod", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
		}
	})
	k.Spawn("cons", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v, err := q.Get(p)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			got = append(got, v)
		}
	})
	k.Run()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k, 0)
	var at Time
	k.Spawn("cons", func(p *Proc) {
		v, err := q.Get(p)
		if err != nil || v != "x" {
			t.Errorf("Get = %q, %v", v, err)
		}
		at = p.Now()
	})
	k.Spawn("prod", func(p *Proc) {
		p.Sleep(4 * time.Second)
		q.Put(p, "x")
	})
	k.Run()
	if at != 4*time.Second {
		t.Fatalf("consumer woke at %v", at)
	}
}

func TestQueueBoundedPutBlocks(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 2)
	var putDone Time
	k.Spawn("prod", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if err := q.Put(p, i); err != nil {
				t.Errorf("Put: %v", err)
			}
		}
		putDone = p.Now()
	})
	k.Spawn("cons", func(p *Proc) {
		p.Sleep(5 * time.Second)
		if _, err := q.Get(p); err != nil {
			t.Errorf("Get: %v", err)
		}
	})
	k.Run()
	if putDone != 5*time.Second {
		t.Fatalf("third Put completed at %v, want 5s (after a Get)", putDone)
	}
}

func TestQueueClose(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	q.TryPut(42)
	var got []int
	var finalErr error
	k.Spawn("cons", func(p *Proc) {
		for {
			v, err := q.Get(p)
			if err != nil {
				finalErr = err
				return
			}
			got = append(got, v)
		}
	})
	k.Schedule(time.Second, func() { q.Close() })
	k.Run()
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("pre-close item lost: %v", got)
	}
	if finalErr != ErrQueueClosed {
		t.Fatalf("err = %v", finalErr)
	}
}

func TestQueueTryOps(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty succeeded")
	}
	if !q.TryPut(1) {
		t.Fatal("TryPut on empty bounded queue failed")
	}
	if q.TryPut(2) {
		t.Fatal("TryPut on full queue succeeded")
	}
	if v, ok := q.Peek(); !ok || v != 1 {
		t.Fatalf("Peek = %v, %v", v, ok)
	}
	if v, ok := q.TryGet(); !ok || v != 1 {
		t.Fatalf("TryGet = %v, %v", v, ok)
	}
}

func TestQueueDrain(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	for i := 0; i < 4; i++ {
		q.TryPut(i)
	}
	got := q.Drain()
	if len(got) != 4 || q.Len() != 0 {
		t.Fatalf("Drain = %v, Len = %d", got, q.Len())
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			if err := c.Wait(p); err == nil {
				woken++
			}
		})
	}
	k.Schedule(time.Second, func() { c.Signal() })
	blocked := k.Run()
	if woken != 1 || blocked != 2 {
		t.Fatalf("woken = %d blocked = %d", woken, blocked)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			if err := c.Wait(p); err == nil {
				woken++
			}
		})
	}
	k.Schedule(time.Second, func() { c.Broadcast() })
	if blocked := k.Run(); blocked != 0 || woken != 3 {
		t.Fatalf("woken = %d blocked = %d", woken, blocked)
	}
}

func TestCondSignalSkipsInterruptedWaiter(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	var events []string
	a := k.Spawn("a", func(p *Proc) {
		if _, ok := IsInterrupted(c.Wait(p)); ok {
			events = append(events, "a-intr")
		}
	})
	k.Spawn("b", func(p *Proc) {
		if err := c.Wait(p); err == nil {
			events = append(events, "b-signal")
		}
	})
	k.Schedule(1*time.Second, func() { a.Interrupt("x") })
	k.Schedule(2*time.Second, func() { c.Signal() }) // must reach b, not stale a
	if blocked := k.Run(); blocked != 0 {
		t.Fatalf("blocked = %d; events = %v", blocked, events)
	}
	if len(events) != 2 || events[0] != "a-intr" || events[1] != "b-signal" {
		t.Fatalf("events = %v", events)
	}
}

package sim

import (
	"reflect"
	"testing"
	"time"
)

// order runs n same-time callbacks through a kernel configured with fn and
// returns the dispatch order.
func order(n int, cfg func(*Kernel)) []int {
	k := NewKernel()
	if cfg != nil {
		cfg(k)
	}
	var got []int
	for i := 0; i < n; i++ {
		i := i
		k.Schedule(0, func() { got = append(got, i) })
	}
	k.Run()
	return got
}

func TestNoTieBreakKeepsScheduleOrder(t *testing.T) {
	got := order(8, nil)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("default order perturbed: %v", got)
	}
}

func TestTieBreakIsSeedDeterministic(t *testing.T) {
	a := order(16, func(k *Kernel) { k.SetTieBreakSeed(7) })
	b := order(16, func(k *Kernel) { k.SetTieBreakSeed(7) })
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed gave different schedules: %v vs %v", a, b)
	}
	c := order(16, func(k *Kernel) { k.SetTieBreakSeed(8) })
	if reflect.DeepEqual(a, c) {
		t.Errorf("different seeds gave identical schedules: %v", a)
	}
	// Some seed must actually permute; otherwise the hook is a no-op.
	identity := order(16, nil)
	permuted := false
	for seed := uint64(0); seed < 8; seed++ {
		if !reflect.DeepEqual(order(16, func(k *Kernel) { k.SetTieBreakSeed(seed) }), identity) {
			permuted = true
			break
		}
	}
	if !permuted {
		t.Error("no seed in 0..7 permuted equal-time events")
	}
}

func TestTieBreakPreservesTimeOrder(t *testing.T) {
	k := NewKernel()
	k.SetTieBreakSeed(3)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Duration(i)*time.Millisecond, func() { got = append(got, i) })
	}
	k.Run()
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tie-breaker reordered distinct-time events: %v", got)
	}
}

package sim

// Cond is a condition variable for procs. Because the kernel runs at most
// one proc at a time there are no data races, but the usual discipline still
// applies: callers must re-check their predicate after Wait returns, since
// another proc may run between the Broadcast and the wake.
type Cond struct {
	k       *Kernel
	waiters []condWaiter
}

type condWaiter struct {
	p   *Proc
	gen uint64
}

// NewCond returns a condition variable bound to k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait suspends p until Signal or Broadcast wakes it (or an interrupt
// arrives). Use in a loop around the predicate.
func (c *Cond) Wait(p *Proc) error {
	c.waiters = append(c.waiters, condWaiter{p: p, gen: p.gen})
	return p.block(Timer{})
}

// Signal wakes one waiting proc, if any. Waiters that were already woken by
// other means (interrupts) are skipped, so a Signal is never wasted on a
// stale entry.
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.p.state == pBlocked && w.p.gen == w.gen {
			c.k.scheduleWake(w.p, c.k.now, w.gen)
			return
		}
	}
}

// Broadcast wakes all waiting procs.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		if w.p.state == pBlocked && w.p.gen == w.gen {
			c.k.scheduleWake(w.p, c.k.now, w.gen)
		}
	}
	c.waiters = nil
}

// Len returns the number of queued waiter entries (including stale ones);
// intended for tests.
func (c *Cond) Len() int { return len(c.waiters) }

package netsim

import (
	"fmt"

	"pvmigrate/internal/sim"
)

// Datagram is an unreliable-in-principle (in this model: reliable, ordered
// per sender) message delivered to a numbered port on a host. The PVM
// daemons use datagrams for daemon-to-daemon and control traffic, as real
// pvmds use UDP.
type Datagram struct {
	Src     HostID
	SrcPort int
	Dst     HostID
	DstPort int
	Bytes   int // payload size used for wire-time accounting
	Payload any // the simulated contents (passed by reference, not copied)
	SentAt  sim.Time
}

// Iface is a host's attachment to the network.
type Iface struct {
	net       *Network
	host      HostID
	listeners map[int]*Listener
	dgrams    map[int]*sim.Queue[Datagram]
	nextPort  int
	// lastLoopback serializes same-host datagram deliveries: local IPC is
	// a FIFO pipe, so a small datagram must not overtake a large one sent
	// just before it.
	lastLoopback sim.Time
}

// Host returns the interface's host id.
func (i *Iface) Host() HostID { return i.host }

// Network returns the network the interface is attached to.
func (i *Iface) Network() *Network { return i.net }

// BindDgram creates (or returns) the datagram queue for a port. Port 0
// allocates an ephemeral port, skipping ports already bound explicitly —
// an ephemeral bind must never alias an existing socket.
func (i *Iface) BindDgram(port int) (*sim.Queue[Datagram], int) {
	if port == 0 {
		for {
			i.nextPort++
			port = 10000 + i.nextPort
			if _, taken := i.dgrams[port]; !taken {
				break
			}
		}
	}
	q, ok := i.dgrams[port]
	if !ok {
		q = sim.NewQueue[Datagram](i.net.k, 0)
		i.dgrams[port] = q
	}
	return q, port
}

// SendDgram transmits a datagram. The call does not block (UDP sendto
// semantics): wire time is reserved immediately and delivery is scheduled
// after transmission plus latency. Same-host datagrams bypass the wire and
// cost one loopback copy. Datagrams larger than the MSS are fragmented;
// delivery happens when the last fragment arrives.
func (i *Iface) SendDgram(srcPort int, dst HostID, dstPort int, bytes int, payload any) {
	k := i.net.k
	d := Datagram{
		Src: i.host, SrcPort: srcPort,
		Dst: dst, DstPort: dstPort,
		Bytes: bytes, Payload: payload,
		SentAt: k.Now(),
	}
	var arrival sim.Time
	var tok uint64 // wire token, when a real backend carries the frame
	var wired bool // true when tok must be redeemed at delivery
	if dst == i.host {
		arrival = k.Now() + i.net.params.DgramOverhead + loopbackTime(i.net.params, bytes)
		if arrival < i.lastLoopback {
			arrival = i.lastLoopback // FIFO through the local IPC path
		}
		i.lastLoopback = arrival
	} else {
		remaining := bytes
		var lastEnd sim.Time
		for {
			frag := remaining
			if frag > i.net.params.MSS {
				frag = i.net.params.MSS
			}
			lastEnd = i.net.link.reserve(frag)
			remaining -= frag
			if remaining <= 0 {
				break
			}
		}
		arrival = lastEnd + i.net.params.Latency
		if w := i.net.wire; w != nil {
			var t uint64
			var err error
			// The real write is host I/O; bridge it at virtual send time.
			k.AwaitExternal(func() { t, err = w.SendDgram(i.host, srcPort, dst, dstPort, payload) })
			if err != nil {
				// A payload the codec cannot marshal is a protocol bug,
				// exactly what the wire backend exists to surface.
				panic(fmt.Sprintf("netsim: wire send of %T failed: %v", payload, err))
			}
			tok, wired = t, true
		}
	}
	k.ScheduleAt(arrival, func() {
		if wired {
			// Always redeem the wire token — even for deliveries the model
			// then drops — so the backend's socket stays drained.
			var v any
			var err error
			k.AwaitExternal(func() { v, err = i.net.wire.RecvDgram(tok) })
			if err != nil {
				panic(fmt.Sprintf("netsim: wire datagram %d lost: %v", tok, err))
			}
			d.Payload = v
		}
		di := i.net.ifaces[dst]
		if di == nil {
			return // host never attached: drop
		}
		if i.net.dropDgram(d.Src, dst) {
			return // host down, partitioned away, or random loss
		}
		if q, ok := di.dgrams[dstPort]; ok {
			q.TryPut(d)
		}
		// No queue bound: drop, like UDP to a closed port.
	})
}

// CloseDgram closes and unbinds the datagram queue on port, so a later
// BindDgram gets a fresh queue. Reviving a crashed host's daemon needs this:
// the dead daemon's queue was closed, and BindDgram alone would hand the
// closed queue back.
func (i *Iface) CloseDgram(port int) {
	if q, ok := i.dgrams[port]; ok {
		q.Close()
		delete(i.dgrams, port)
	}
}

func loopbackTime(p Params, bytes int) sim.Time {
	return sim.FromSeconds(float64(bytes) / p.LoopbackBps)
}

package netsim

import (
	"errors"
	"testing"

	"pvmigrate/internal/sim"
)

// Regression: BindDgram(0) must never hand out a port that was already
// bound explicitly. Before the fix, the ephemeral allocator computed
// 10000+nextPort without consulting i.dgrams, so an explicit bind of 10001
// made the next ephemeral bind return the *existing* queue — two logically
// distinct sockets cross-wired onto one inbox.
func TestBindDgramEphemeralSkipsBoundPorts(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	i := n.Attach(0)

	explicit, port := i.BindDgram(10001) // the first ephemeral candidate
	if port != 10001 {
		t.Fatalf("explicit bind got port %d, want 10001", port)
	}
	q1, p1 := i.BindDgram(0)
	if p1 == 10001 {
		t.Fatalf("ephemeral bind allocated the explicitly bound port %d", p1)
	}
	if q1 == explicit {
		t.Fatalf("ephemeral bind aliased the explicitly bound queue")
	}
	// A run of explicit binds across the ephemeral range must all be
	// skipped, and consecutive ephemeral binds stay distinct.
	i.BindDgram(10003)
	i.BindDgram(10004)
	q2, p2 := i.BindDgram(0)
	q3, p3 := i.BindDgram(0)
	if p2 == 10003 || p2 == 10004 || p3 == 10003 || p3 == 10004 {
		t.Fatalf("ephemeral binds %d, %d collided with explicit ports", p2, p3)
	}
	if p2 == p1 || p3 == p2 || q2 == q1 || q3 == q2 {
		t.Fatalf("ephemeral binds not distinct: ports %d, %d, %d", p1, p2, p3)
	}
}

// Regression: Dial books its three 40-byte handshake frames on the shared
// link but used to sleep a fixed TCPSetup + 3·Latency, ignoring when those
// frames actually clear the wire. Under cross-traffic the dialer then
// "completed" its handshake long before its own SYN frames had
// transmitted. The handshake is done no earlier than the last reserved
// frame's end + propagation latency + socket setup.
func TestDialWaitsForHandshakeFrames(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	src := n.Attach(0)
	dst := n.Attach(1)
	if _, err := dst.Listen(9000); err != nil {
		t.Fatalf("listen: %v", err)
	}

	// Pre-load ~1 s of backlog on the wire, as heavy cross-traffic would.
	var backlogEnd sim.Time
	for backlogEnd < sim.FromSeconds(1) {
		backlogEnd = n.link.reserve(n.params.MSS)
	}

	var completed sim.Time
	dialErr := errors.New("dial never ran")
	k.Spawn("dialer", func(p *sim.Proc) {
		_, dialErr = src.Dial(p, 1, 9000)
		completed = p.Now()
	})
	k.Run()
	if dialErr != nil {
		t.Fatalf("dial: %v", dialErr)
	}
	// The dialer's SYN/SYN-ACK/ACK frames queue behind the backlog.
	earliest := backlogEnd + 3*n.link.frameTime(40) + n.params.Latency + n.params.TCPSetup
	if completed < earliest {
		t.Fatalf("dial completed at %v, before its handshake frames cleared the wire (earliest %v)",
			completed, earliest)
	}
}

// Dial must notice a listener that closed while the handshake was in
// flight: the final ACK lands on a dead socket and the dial is refused,
// not handed a connection nothing will ever accept.
func TestDialRefusedWhenListenerClosesMidHandshake(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	src := n.Attach(0)
	dst := n.Attach(1)
	l, err := dst.Listen(9000)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	k.Schedule(n.params.TCPSetup/2, func() { l.Close() })

	var dialErr error
	gotConn := false
	k.Spawn("dialer", func(p *sim.Proc) {
		c, err := src.Dial(p, 1, 9000)
		dialErr = err
		gotConn = c != nil
	})
	k.Run()
	if gotConn || !errors.Is(dialErr, ErrConnRefused) {
		t.Fatalf("dial got (conn=%v, err=%v), want refused", gotConn, dialErr)
	}
}

// Pins Conn.Close's intended in-flight asymmetry: segments the closer
// already sent still arrive (TCP flushes on close), while segments in
// flight *toward* the closer are silently dropped (the closer's inbox is
// closed, so their delivery TryPut vanishes — like data landing in a
// closed socket's buffer).
func TestConnCloseInFlightAsymmetry(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	src := n.Attach(0)
	dst := n.Attach(1)
	l, err := dst.Listen(9000)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}

	var serverGot []any
	var serverRecvErr, serverSendErr error
	k.Spawn("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		// A large segment toward the client: still in flight when the
		// client closes (the client's small send finishes pacing first).
		serverSendErr = c.Send(p, 400_000, "to-client")
		for {
			seg, err := c.Recv(p)
			if err != nil {
				serverRecvErr = err
				return
			}
			serverGot = append(serverGot, seg.Payload)
		}
	})

	var clientRecvErr error
	k.Spawn("client", func(p *sim.Proc) {
		c, err := src.Dial(p, 1, 9000)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := c.Send(p, 50_000, "to-server"); err != nil {
			t.Errorf("client send: %v", err)
		}
		c.Close() // both directions now have in-flight data
		_, clientRecvErr = c.Recv(p)
	})
	k.Run()

	// Flushed direction: the closer's segment arrived, then the peer's
	// Recv drained to ErrConnClosed.
	if len(serverGot) != 1 || serverGot[0] != "to-server" {
		t.Errorf("server received %v, want the closer's flushed segment", serverGot)
	}
	if serverRecvErr != ErrConnClosed {
		t.Errorf("server recv error = %v, want ErrConnClosed after drain", serverRecvErr)
	}
	// Dropped direction: the send toward the closer was accepted —
	// and its delivery silently discarded.
	if serverSendErr != nil {
		t.Errorf("server send = %v, want accepted (drop is silent)", serverSendErr)
	}
	if clientRecvErr != ErrConnClosed {
		t.Errorf("client recv error = %v, want ErrConnClosed (in-flight data dropped)", clientRecvErr)
	}
}

package netsim

import "pvmigrate/internal/sim"

// Link is the shared Ethernet medium, modelled as a single non-preemptive
// FIFO server: each frame occupies the wire for (payload+overhead)·8/bw
// seconds, and competing transfers interleave at frame granularity because
// each sender reserves one frame slot at a time.
type Link struct {
	k         *sim.Kernel
	params    Params
	busyUntil sim.Time

	// accounting
	bytesCarried  int64 // payload bytes
	framesCarried int64
	busyTime      sim.Time
}

func newLink(k *sim.Kernel, p Params) *Link {
	return &Link{k: k, params: p}
}

// frameTime returns the wire occupancy of a frame carrying payload bytes.
func (l *Link) frameTime(payload int) sim.Time {
	bits := float64(payload+l.params.FrameOverhead) * 8
	return sim.FromSeconds(bits / l.params.BandwidthBps)
}

// reserve books wire time for a frame starting no earlier than now and
// returns the time the frame finishes transmission (before propagation
// latency). It never blocks; callers either sleep until the returned time
// (paced senders) or schedule delivery callbacks (datagrams).
func (l *Link) reserve(payload int) sim.Time {
	now := l.k.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	d := l.frameTime(payload)
	l.busyUntil = start + d
	l.bytesCarried += int64(payload)
	l.framesCarried++
	l.busyTime += d
	return l.busyUntil
}

// Transmit sends one frame with the given payload size, blocking the caller
// until the frame has left the wire. It is the pacing primitive used by the
// TCP model.
func (l *Link) Transmit(p *sim.Proc, payload int) error {
	end := l.reserve(payload)
	return p.SleepUntil(end)
}

// BytesCarried returns the total payload bytes that have crossed the link.
func (l *Link) BytesCarried() int64 { return l.bytesCarried }

// FramesCarried returns the total frame count.
func (l *Link) FramesCarried() int64 { return l.framesCarried }

// BusyTime returns the cumulative wire occupancy.
func (l *Link) BusyTime() sim.Time { return l.busyTime }

// Utilization returns busy time ÷ elapsed time since simulation start.
func (l *Link) Utilization() float64 {
	if l.k.Now() == 0 {
		return 0
	}
	return float64(l.busyTime) / float64(l.k.Now())
}

// Package netsim models the shared 10 Mb/s Ethernet segment and the TCP and
// datagram services that the PVM substrate uses, as a discrete-event system
// on top of the sim kernel.
//
// The model is deliberately simple — a single shared FIFO link with
// per-frame pacing — because the quantities the paper measures (raw TCP
// transfer time, migration obtrusiveness, flush round trips) are dominated
// by payload size ÷ effective bandwidth plus a handful of protocol round
// trips. The frame overhead default is *fitted* so that a bulk TCP transfer
// achieves ~1.04 MB/s of payload goodput, which is the effective bandwidth
// implied by the raw-TCP column of the paper's Table 2 (slaves carry half of
// each listed data size: 0.3 MB/0.27 s ≈ 10.4 MB/10.0 s ≈ 1.04 MB/s).
package netsim

import (
	"time"

	"pvmigrate/internal/sim"
)

// HostID identifies a workstation on the network (dense, 0-based).
type HostID int

// Params configures the network model. Zero fields take the defaults from
// DefaultParams.
type Params struct {
	// BandwidthBps is the raw wire rate in bits per second (10 Mb/s
	// Ethernet in the paper's testbed).
	BandwidthBps float64
	// Latency is the one-way propagation plus interrupt/driver latency per
	// frame.
	Latency sim.Time
	// MSS is the TCP maximum segment payload per frame.
	MSS int
	// FrameOverhead is the *equivalent* per-frame overhead in bytes. It
	// folds together Ethernet/IP/TCP headers, the inter-frame gap, ACK
	// traffic and per-frame protocol processing, and is fitted so bulk TCP
	// goodput matches the paper's measured raw-TCP bandwidth.
	FrameOverhead int
	// TCPSetup is the connection establishment cost beyond the handshake
	// round trips (socket creation, accept processing).
	TCPSetup sim.Time
	// DgramOverhead is the per-datagram fixed cost (UDP syscall + driver).
	DgramOverhead sim.Time
	// LoopbackBps is the effective memory-copy bandwidth for same-host
	// delivery, bytes/s.
	LoopbackBps float64
	// Wire, when non-nil, carries every cross-host frame over a real
	// OS-level transport in addition to the timing model (see the Wire
	// interface in wire.go). nil keeps the fully in-memory backend.
	Wire Wire
}

// DefaultParams returns the calibrated 1994 testbed model: 10 Mb/s shared
// Ethernet between HP 9000/720 workstations.
func DefaultParams() Params {
	return Params{
		BandwidthBps:  10e6,
		Latency:       700 * time.Microsecond,
		MSS:           1460,
		FrameOverhead: 295, // fitted: 1460B payload per (1460+295)*8/10e6 s = 1.04 MB/s
		TCPSetup:      25 * time.Millisecond,
		DgramOverhead: 300 * time.Microsecond,
		LoopbackBps:   25e6, // HP-720-era memcpy
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.BandwidthBps == 0 {
		p.BandwidthBps = d.BandwidthBps
	}
	if p.Latency == 0 {
		p.Latency = d.Latency
	}
	if p.MSS == 0 {
		p.MSS = d.MSS
	}
	if p.FrameOverhead == 0 {
		p.FrameOverhead = d.FrameOverhead
	}
	if p.TCPSetup == 0 {
		p.TCPSetup = d.TCPSetup
	}
	if p.DgramOverhead == 0 {
		p.DgramOverhead = d.DgramOverhead
	}
	if p.LoopbackBps == 0 {
		p.LoopbackBps = d.LoopbackBps
	}
	return p
}

// GoodputBps returns the model's steady-state bulk TCP payload bandwidth in
// bytes per second. With default parameters this is ~1.04 MB/s.
func (p Params) GoodputBps() float64 {
	p = p.withDefaults()
	return float64(p.MSS) / (float64(p.MSS+p.FrameOverhead) * 8 / p.BandwidthBps)
}

// Network is a shared Ethernet segment connecting a set of host interfaces.
type Network struct {
	k      *sim.Kernel
	params Params
	link   *Link
	wire   Wire // nil = in-memory only
	ifaces map[HostID]*Iface

	// failure state, driven by the fault-injection layer (failures.go)
	down     map[HostID]bool
	group    map[HostID]int
	lossRate float64
	lossRNG  *sim.RNG
}

// New creates a network on kernel k with the given parameters.
func New(k *sim.Kernel, params Params) *Network {
	p := params.withDefaults()
	return &Network{
		k:      k,
		params: p,
		link:   newLink(k, p),
		wire:   p.Wire,
		ifaces: make(map[HostID]*Iface),
	}
}

// Kernel returns the kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// Params returns the (defaulted) model parameters.
func (n *Network) Params() Params { return n.params }

// Link returns the shared Ethernet link, mainly for tests and utilization
// probes.
func (n *Network) Link() *Link { return n.link }

// Attach creates (or returns the existing) interface for host h.
func (n *Network) Attach(h HostID) *Iface {
	if i, ok := n.ifaces[h]; ok {
		return i
	}
	i := &Iface{
		net:       n,
		host:      h,
		listeners: make(map[int]*Listener),
		dgrams:    make(map[int]*sim.Queue[Datagram]),
	}
	n.ifaces[h] = i
	if n.wire != nil {
		// Socket binding is host I/O: bridge it so virtual time stays frozen.
		n.k.AwaitExternal(func() { n.wire.AttachHost(h) })
	}
	return i
}

// Iface returns the interface for host h, or nil if never attached.
func (n *Network) Iface(h HostID) *Iface { return n.ifaces[h] }

package netsim

import (
	"testing"

	"pvmigrate/internal/sim"
)

// measureGoodput times a 2 MB bulk transfer with the given cross-traffic.
func measureGoodput(t *testing.T, utilization float64) float64 {
	t.Helper()
	k := sim.NewKernel()
	n := New(k, Params{})
	a, b := n.Attach(0), n.Attach(1)
	if utilization > 0 {
		StartCrossTraffic(n, 99, utilization)
	}
	l, err := b.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 2_000_000
	var done sim.Time
	k.Spawn("sink", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		if _, err := c.Recv(p); err == nil {
			done = p.Now()
		}
	})
	var start sim.Time
	k.Spawn("src", func(p *sim.Proc) {
		c, err := a.Dial(p, 1, 1)
		if err != nil {
			return
		}
		start = p.Now()
		c.Send(p, bytes, nil)
	})
	k.RunUntil(200 * 1e9) // bounded: cross-traffic would run forever
	if done == 0 {
		t.Fatal("transfer never completed")
	}
	return bytes / (done - start).Seconds()
}

func TestCrossTrafficDegradesGoodput(t *testing.T) {
	quiet := measureGoodput(t, 0)
	half := measureGoodput(t, 0.5)
	heavy := measureGoodput(t, 0.8)
	if !(quiet > half && half > heavy) {
		t.Fatalf("goodput not monotone: %.0f, %.0f, %.0f B/s", quiet, half, heavy)
	}
	// With 50% background utilization the foreground gets roughly half.
	ratio := half / quiet
	if ratio < 0.4 || ratio > 0.65 {
		t.Fatalf("50%% cross traffic left %.0f%% of goodput", ratio*100)
	}
}

func TestCrossTrafficStops(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	ct := StartCrossTraffic(n, 1, 0.5)
	k.RunUntil(1e9)
	carried := n.Link().FramesCarried()
	if carried == 0 {
		t.Fatal("no cross traffic injected")
	}
	ct.Stop()
	k.RunUntil(2e9)
	after := n.Link().FramesCarried()
	k.RunUntil(10e9)
	if n.Link().FramesCarried() > after+1 {
		t.Fatal("cross traffic kept flowing after Stop")
	}
}

func TestCrossTrafficPanicsOnBadUtilization(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	for _, u := range []float64{0, 1, -0.3, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("utilization %f accepted", u)
				}
			}()
			StartCrossTraffic(n, 1, u)
		}()
	}
}

package netsim

import (
	"math"
	"testing"
	"time"

	"pvmigrate/internal/sim"
)

func TestGoodputCalibration(t *testing.T) {
	g := DefaultParams().GoodputBps()
	// The paper's raw-TCP column implies ~1.04 MB/s.
	if g < 1.00e6 || g > 1.08e6 {
		t.Fatalf("calibrated goodput = %.0f B/s, want ~1.04e6", g)
	}
}

func TestBulkTransferTimeMatchesRawTCPColumn(t *testing.T) {
	// Paper Table 2, raw TCP: 0.3 MB in 0.27 s ... 10.4 MB in 10.0 s
	// (slaves carry half the listed training-set size).
	cases := []struct {
		bytes int
		want  float64 // seconds
		tol   float64
	}{
		{300_000, 0.27, 0.05},
		{2_100_000, 1.82, 0.25},
		{2_900_000, 2.51, 0.35},
		{4_900_000, 4.42, 0.45},
		{6_750_000, 6.17, 0.55},
		{10_400_000, 10.00, 0.65},
	}
	for _, c := range cases {
		k := sim.NewKernel()
		n := New(k, Params{})
		a, b := n.Attach(0), n.Attach(1)
		l, err := b.Listen(5000)
		if err != nil {
			t.Fatal(err)
		}
		var done sim.Time
		k.Spawn("recv", func(p *sim.Proc) {
			c2, err := l.Accept(p)
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			if _, err := c2.Recv(p); err != nil {
				t.Errorf("recv: %v", err)
			}
			done = p.Now()
		})
		k.Spawn("send", func(p *sim.Proc) {
			conn, err := a.Dial(p, 1, 5000)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			if err := conn.Send(p, c.bytes, nil); err != nil {
				t.Errorf("send: %v", err)
			}
		})
		if blocked := k.Run(); blocked != 0 {
			t.Fatalf("deadlock: %v", k.Blocked())
		}
		got := sim.Seconds(done)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("transfer %d B took %.3f s, paper raw TCP %.2f s (tol %.2f)",
				c.bytes, got, c.want, c.tol)
		}
	}
}

func TestLinkFIFOAndSharing(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	link := n.Link()
	// Two competing senders each pushing 100 frames of MSS: total wire time
	// must be the sum (no overlap on a shared medium), and both finish at
	// about the same time (fair interleaving).
	var endA, endB sim.Time
	frame := n.Params().MSS
	k.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			link.Transmit(p, frame)
		}
		endA = p.Now()
	})
	k.Spawn("b", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			link.Transmit(p, frame)
		}
		endB = p.Now()
	})
	k.Run()
	perFrame := link.frameTime(frame)
	wantTotal := 200 * perFrame
	if endA > endB {
		endA, endB = endB, endA
	}
	if endB != wantTotal {
		t.Fatalf("last finisher at %v, want %v", endB, wantTotal)
	}
	// Fair interleave: first finisher within one frame of the last.
	if endB-endA > 2*perFrame {
		t.Fatalf("unfair sharing: %v vs %v", endA, endB)
	}
	if link.FramesCarried() != 200 {
		t.Fatalf("frames = %d", link.FramesCarried())
	}
}

func TestDatagramDelivery(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a, b := n.Attach(0), n.Attach(1)
	q, _ := b.BindDgram(7)
	var got Datagram
	var at sim.Time
	k.Spawn("recv", func(p *sim.Proc) {
		d, err := q.Get(p)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		got, at = d, p.Now()
	})
	k.Spawn("send", func(p *sim.Proc) {
		a.SendDgram(9, 1, 7, 1000, "hello")
	})
	if blocked := k.Run(); blocked != 0 {
		t.Fatalf("deadlock: %v", k.Blocked())
	}
	if got.Payload != "hello" || got.Src != 0 || got.SrcPort != 9 {
		t.Fatalf("datagram = %+v", got)
	}
	if at <= 0 || at > 10*time.Millisecond {
		t.Fatalf("arrival at %v", at)
	}
}

func TestDatagramSameHostLoopback(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a := n.Attach(0)
	q, _ := a.BindDgram(7)
	var at sim.Time
	k.Spawn("recv", func(p *sim.Proc) {
		if _, err := q.Get(p); err == nil {
			at = p.Now()
		}
	})
	a.SendDgram(8, 0, 7, 1_000_000, nil)
	k.Run()
	// 1 MB over loopback at 25 MB/s = 40 ms; must not pay Ethernet time
	// (~0.96 s) and must not be free.
	if at < 30*time.Millisecond || at > 60*time.Millisecond {
		t.Fatalf("loopback arrival at %v", at)
	}
	if n.Link().FramesCarried() != 0 {
		t.Fatal("loopback datagram used the wire")
	}
}

func TestDatagramToUnboundPortDropped(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a := n.Attach(0)
	n.Attach(1)
	a.SendDgram(1, 1, 99, 100, nil) // nothing bound on 1:99
	if blocked := k.Run(); blocked != 0 {
		t.Fatalf("blocked procs after drop: %d", blocked)
	}
}

func TestDialRefusedWithoutListener(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a := n.Attach(0)
	n.Attach(1)
	var err error
	k.Spawn("dial", func(p *sim.Proc) {
		_, err = a.Dial(p, 1, 4242)
	})
	k.Run()
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestListenPortInUse(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a := n.Attach(0)
	if _, err := a.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Listen(80); err == nil {
		t.Fatal("double listen succeeded")
	}
}

func TestConnMessageBoundariesAndOrder(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a, b := n.Attach(0), n.Attach(1)
	l, _ := b.Listen(1)
	var got []int
	k.Spawn("srv", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		for i := 0; i < 5; i++ {
			seg, err := c.Recv(p)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = append(got, seg.Payload.(int))
		}
	})
	k.Spawn("cli", func(p *sim.Proc) {
		c, err := a.Dial(p, 1, 1)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < 5; i++ {
			c.Send(p, 100+i, i)
		}
	})
	if blocked := k.Run(); blocked != 0 {
		t.Fatalf("deadlock: %v", k.Blocked())
	}
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestConnClose(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a, b := n.Attach(0), n.Attach(1)
	l, _ := b.Listen(1)
	var recvErr error
	k.Spawn("srv", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		_, recvErr = c.Recv(p)
	})
	k.Spawn("cli", func(p *sim.Proc) {
		c, err := a.Dial(p, 1, 1)
		if err != nil {
			return
		}
		p.Sleep(time.Second)
		c.Close()
	})
	if blocked := k.Run(); blocked != 0 {
		t.Fatalf("recv did not unblock on close: %v", k.Blocked())
	}
	if recvErr != ErrConnClosed {
		t.Fatalf("recvErr = %v", recvErr)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	link := n.Link()
	k.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			link.Transmit(p, n.Params().MSS)
		}
	})
	k.Run()
	if u := link.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("utilization = %f, want 1.0 for saturating sender", u)
	}
}

package netsim

import (
	"testing"
	"time"

	"pvmigrate/internal/sim"
)

func TestLoopbackTCPConn(t *testing.T) {
	// Same-host connections bypass the wire and pay memcpy time.
	k := sim.NewKernel()
	n := New(k, Params{})
	a := n.Attach(0)
	l, err := a.Listen(5)
	if err != nil {
		t.Fatal(err)
	}
	var gotAt sim.Time
	k.Spawn("srv", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		if _, err := c.Recv(p); err == nil {
			gotAt = p.Now()
		}
	})
	var sentAt sim.Time
	k.Spawn("cli", func(p *sim.Proc) {
		c, err := a.Dial(p, 0, 5)
		if err != nil {
			t.Errorf("loopback dial: %v", err)
			return
		}
		sentAt = p.Now()
		c.Send(p, 1_000_000, nil)
	})
	k.Run()
	elapsed := gotAt - sentAt
	// 1 MB at 25 MB/s loopback = 40 ms; no Ethernet frames used.
	if elapsed < 30*time.Millisecond || elapsed > 60*time.Millisecond {
		t.Fatalf("loopback transfer took %v", elapsed)
	}
	if n.Link().FramesCarried() != 0 {
		t.Fatal("loopback used the wire")
	}
}

func TestTryRecv(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a, b := n.Attach(0), n.Attach(1)
	l, _ := b.Listen(1)
	var srv *Conn
	k.Spawn("srv", func(p *sim.Proc) {
		srv, _ = l.Accept(p)
	})
	k.Spawn("cli", func(p *sim.Proc) {
		c, err := a.Dial(p, 1, 1)
		if err != nil {
			return
		}
		c.Send(p, 100, "x")
	})
	k.Run()
	if srv == nil {
		t.Fatal("no connection")
	}
	seg, ok := srv.TryRecv()
	if !ok || seg.Payload != "x" {
		t.Fatalf("TryRecv = %+v, %v", seg, ok)
	}
	if _, ok := srv.TryRecv(); ok {
		t.Fatal("phantom second segment")
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a := n.Attach(0)
	l, _ := a.Listen(7)
	var err error
	k.Spawn("srv", func(p *sim.Proc) {
		_, err = l.Accept(p)
	})
	k.Schedule(time.Second, func() { l.Close() })
	if blocked := k.Run(); blocked != 0 {
		t.Fatal("accept still blocked after close")
	}
	if err != ErrListenerClose {
		t.Fatalf("err = %v", err)
	}
	// Port is reusable after close.
	if _, err := a.Listen(7); err != nil {
		t.Fatalf("relisten: %v", err)
	}
}

func TestConnEndpointsAndSegmentTimestamps(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a, b := n.Attach(0), n.Attach(1)
	l, _ := b.Listen(2)
	var seg Segment
	k.Spawn("srv", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		if c.Local() != 1 || c.Remote() != 0 {
			t.Errorf("server endpoints: %d, %d", c.Local(), c.Remote())
		}
		seg, _ = c.Recv(p)
	})
	k.Spawn("cli", func(p *sim.Proc) {
		c, err := a.Dial(p, 1, 2)
		if err != nil {
			return
		}
		if c.Local() != 0 || c.Remote() != 1 {
			t.Errorf("client endpoints: %d, %d", c.Local(), c.Remote())
		}
		p.Sleep(time.Second)
		c.Send(p, 50_000, nil)
	})
	k.Run()
	if seg.SentAt < time.Second || seg.ArrivedAt <= seg.SentAt {
		t.Fatalf("timestamps: sent %v arrived %v", seg.SentAt, seg.ArrivedAt)
	}
}

func TestGoodputRespectsParamOverride(t *testing.T) {
	slow := Params{BandwidthBps: 1e6}.withDefaults()
	fast := Params{BandwidthBps: 100e6}.withDefaults()
	if slow.GoodputBps() >= fast.GoodputBps() {
		t.Fatal("bandwidth override ignored")
	}
	d := DefaultParams()
	if d.GoodputBps() < 1.0e6 || d.GoodputBps() > 1.1e6 {
		t.Fatalf("default goodput = %f", d.GoodputBps())
	}
}

func TestDgramEphemeralPorts(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a := n.Attach(0)
	_, p1 := a.BindDgram(0)
	_, p2 := a.BindDgram(0)
	if p1 == p2 || p1 == 0 || p2 == 0 {
		t.Fatalf("ephemeral ports: %d, %d", p1, p2)
	}
	// Binding the same explicit port returns the same queue.
	q1, _ := a.BindDgram(77)
	q2, _ := a.BindDgram(77)
	if q1 != q2 {
		t.Fatal("rebinding a port created a new queue")
	}
}

func TestIfaceAccessors(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Params{})
	a := n.Attach(3)
	if a.Host() != 3 || a.Network() != n {
		t.Fatal("iface accessors wrong")
	}
	if n.Iface(3) != a || n.Iface(9) != nil {
		t.Fatal("network iface lookup wrong")
	}
	if n.Attach(3) != a {
		t.Fatal("re-attach created a new iface")
	}
}

package netsim

import "pvmigrate/internal/sim"

// Failure primitives: the fault-injection layer (internal/ft) drives these
// to take hosts off the wire, split the segment into partitions, and drop a
// fraction of datagrams. All state changes happen in kernel context (the
// injector schedules them as kernel events), so every run is reproducible.
//
// Semantics:
//   - A *down* host neither sends nor receives: datagrams to or from it are
//     dropped at delivery time (frames already on the wire when the host
//     dies are lost, like a real NIC going dark mid-packet), and TCP
//     dials/sends fail fast with ErrUnreachable.
//   - A *partition* assigns each host a group number; traffic crosses only
//     within a group. Hosts never assigned default to group 0.
//   - *Loss* drops each cross-host datagram with the configured probability,
//     from a dedicated seeded stream so enabling loss never perturbs other
//     components' randomness. TCP is not subject to loss (the real protocol
//     retransmits; the model folds that into its fitted goodput).

// SetHostDown marks host h down (true) or back up (false).
func (n *Network) SetHostDown(h HostID, down bool) {
	if n.down == nil {
		n.down = make(map[HostID]bool)
	}
	if down {
		n.down[h] = true
	} else {
		delete(n.down, h)
	}
}

// HostDown reports whether host h is currently down.
func (n *Network) HostDown(h HostID) bool { return n.down[h] }

// Partition splits the segment: each host maps to a group number and frames
// cross only within a group. Hosts absent from the map are in group 0.
// Calling Partition replaces any previous partition.
func (n *Network) Partition(groups map[HostID]int) {
	n.group = make(map[HostID]int, len(groups))
	for h, g := range groups {
		n.group[h] = g
	}
}

// Heal removes any partition; all hosts rejoin group 0.
func (n *Network) Heal() { n.group = nil }

// SetLoss sets the datagram loss rate (0 disables) with its own seeded
// stream. rate outside [0, 1) is clamped.
func (n *Network) SetLoss(rate float64, seed uint64) {
	if rate < 0 {
		rate = 0
	}
	if rate >= 1 {
		rate = 0.999
	}
	n.lossRate = rate
	if rate > 0 {
		n.lossRNG = sim.NewRNG(seed)
	} else {
		n.lossRNG = nil
	}
}

// Reachable reports whether traffic from a can currently reach b: both hosts
// up and in the same partition group. A host can always reach itself while
// it is up (loopback does not touch the wire).
func (n *Network) Reachable(a, b HostID) bool {
	if n.down[a] || n.down[b] {
		return false
	}
	if a == b {
		return true
	}
	return n.group[a] == n.group[b]
}

// dropDgram decides, at delivery time, whether a datagram from src to dst is
// lost — to a down host, across a partition, or to random loss.
func (n *Network) dropDgram(src, dst HostID) bool {
	if !n.Reachable(src, dst) {
		return true
	}
	if src != dst && n.lossRate > 0 && n.lossRNG.Float64() < n.lossRate {
		return true
	}
	return false
}

package netsim

import (
	"errors"
	"fmt"

	"pvmigrate/internal/sim"
)

// Errors returned by the TCP model.
var (
	ErrConnClosed    = errors.New("netsim: connection closed")
	ErrConnRefused   = errors.New("netsim: connection refused")
	ErrPortInUse     = errors.New("netsim: port already in use")
	ErrListenerClose = errors.New("netsim: listener closed")
	ErrUnreachable   = errors.New("netsim: host unreachable")
)

// Segment is one application-level send on a TCP connection. The model
// preserves message boundaries (the PVM layer frames its own messages; we
// spare it the extra bookkeeping and document the simplification).
type Segment struct {
	Bytes     int
	Payload   any
	SentAt    sim.Time
	ArrivedAt sim.Time
}

// Conn is one endpoint of an established connection.
type Conn struct {
	net    *Network
	local  HostID
	remote HostID
	peer   *Conn
	inbox  *sim.Queue[Segment]
	closed bool
	// wire, when non-nil, is the paired endpoint of a real TCP connection
	// (Params.Wire backend); wireSeq numbers this direction's frames.
	wire    WireConn
	wireSeq uint64
	// lastArrival is the latest scheduled delivery into the peer's inbox;
	// Close defers teardown until then, so in-flight data is not lost
	// (TCP flushes queued data on close).
	lastArrival sim.Time
}

// Listener accepts incoming connections on a host/port.
type Listener struct {
	iface   *Iface
	port    int
	pending *sim.Queue[*Conn]
	closed  bool
}

// Listen binds a TCP listener to the given port on this interface.
func (i *Iface) Listen(port int) (*Listener, error) {
	if _, ok := i.listeners[port]; ok {
		return nil, fmt.Errorf("%w: host %d port %d", ErrPortInUse, i.host, port)
	}
	if w := i.net.wire; w != nil {
		var werr error
		i.net.k.AwaitExternal(func() { werr = w.Listen(i.host, port) })
		if werr != nil {
			return nil, fmt.Errorf("%w: wire: %v", ErrPortInUse, werr)
		}
	}
	l := &Listener{
		iface:   i,
		port:    port,
		pending: sim.NewQueue[*Conn](i.net.k, 0),
	}
	i.listeners[port] = l
	return l, nil
}

// Port returns the listener's port.
func (l *Listener) Port() int { return l.port }

// Accept blocks until a connection arrives and returns the server-side
// endpoint.
func (l *Listener) Accept(p *sim.Proc) (*Conn, error) {
	c, err := l.pending.Get(p)
	if err == sim.ErrQueueClosed {
		return nil, ErrListenerClose
	}
	return c, err
}

// Close stops the listener; blocked Accepts return ErrListenerClose.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.iface.listeners, l.port)
	if w := l.iface.net.wire; w != nil {
		l.iface.net.k.AwaitExternal(func() { w.CloseListen(l.iface.host, l.port) })
	}
	l.pending.Close()
}

// Dial establishes a connection from this interface to dst:port. The caller
// blocks for the handshake (~1.5 RTT) plus the configured setup cost. The
// returned endpoint is ready for Send/Recv; the peer endpoint is delivered
// to the destination's listener queue.
func (i *Iface) Dial(p *sim.Proc, dst HostID, port int) (*Conn, error) {
	di := i.net.ifaces[dst]
	if di == nil {
		return nil, fmt.Errorf("%w: no host %d", ErrConnRefused, dst)
	}
	if !i.net.Reachable(i.host, dst) {
		return nil, fmt.Errorf("%w: host %d -> %d", ErrUnreachable, i.host, dst)
	}
	l, ok := di.listeners[port]
	if !ok || l.closed {
		return nil, fmt.Errorf("%w: host %d port %d", ErrConnRefused, dst, port)
	}
	// Handshake: SYN, SYN-ACK, ACK → three small frames (or loopback), plus
	// socket setup processing. The frames are queued on the shared link, so
	// the handshake is not done until the *last reserved frame* has left the
	// wire and propagated — under cross-traffic that completion time, not a
	// fixed 3·latency, dominates. (Sleeping the fixed amount let a dialer
	// "complete" before its own SYN frames had transmitted, and leaked the
	// reserved wire time into utilization even on failed dials — which is
	// unavoidable for the frames already sent, but the timing must match.)
	if dst != i.host {
		var lastEnd sim.Time
		for f := 0; f < 3; f++ {
			lastEnd = i.net.link.reserve(40)
		}
		if err := p.SleepUntil(lastEnd + i.net.params.Latency); err != nil {
			return nil, err
		}
	}
	if err := p.Sleep(i.net.params.TCPSetup); err != nil {
		return nil, err
	}
	if !i.net.Reachable(i.host, dst) {
		return nil, fmt.Errorf("%w: host %d -> %d", ErrUnreachable, i.host, dst)
	}
	if l.closed {
		// The listener went away while the handshake was in flight: the
		// final ACK lands on a closed socket.
		return nil, fmt.Errorf("%w: host %d port %d", ErrConnRefused, dst, port)
	}
	k := i.net.k
	client := &Conn{net: i.net, local: i.host, remote: dst, inbox: sim.NewQueue[Segment](k, 0)}
	server := &Conn{net: i.net, local: dst, remote: i.host, inbox: sim.NewQueue[Segment](k, 0)}
	client.peer, server.peer = server, client
	if w := i.net.wire; w != nil && dst != i.host {
		var cw, sw WireConn
		var werr error
		k.AwaitExternal(func() { cw, sw, werr = w.Dial(i.host, dst, port) })
		if werr != nil {
			return nil, fmt.Errorf("%w: wire: %v", ErrConnRefused, werr)
		}
		client.wire, server.wire = cw, sw
	}
	if !l.pending.TryPut(server) {
		if client.wire != nil {
			k.AwaitExternal(func() {
				client.wire.Close()
				server.wire.Close()
			})
		}
		return nil, ErrConnRefused
	}
	return client, nil
}

// Local returns the local host id.
func (c *Conn) Local() HostID { return c.local }

// Remote returns the peer host id.
func (c *Conn) Remote() HostID { return c.remote }

// Send transfers bytes of payload to the peer, blocking the sender at wire
// pace: the payload is cut into MSS-sized frames, each individually queued
// on the shared link, so concurrent transfers interleave fairly. The
// segment is delivered to the peer's inbox when the last frame arrives.
// Same-host connections pay loopback copy time instead of wire time.
func (c *Conn) Send(p *sim.Proc, bytes int, payload any) error {
	if c.closed {
		return ErrConnClosed
	}
	if !c.net.Reachable(c.local, c.remote) {
		return fmt.Errorf("%w: host %d -> %d", ErrUnreachable, c.local, c.remote)
	}
	seg := Segment{Bytes: bytes, Payload: payload, SentAt: p.Now()}
	var arrival sim.Time
	if c.remote == c.local {
		d := loopbackTime(c.net.params, bytes)
		if err := p.Sleep(d); err != nil {
			return err
		}
		arrival = p.Now()
	} else {
		remaining := bytes
		for {
			frag := remaining
			if frag > c.net.params.MSS {
				frag = c.net.params.MSS
			}
			if frag < 0 {
				frag = 0
			}
			if err := c.net.link.Transmit(p, frag); err != nil {
				return err
			}
			remaining -= frag
			if remaining <= 0 {
				break
			}
		}
		arrival = p.Now() + c.net.params.Latency
	}
	seg.ArrivedAt = arrival
	if arrival > c.lastArrival {
		c.lastArrival = arrival
	}
	peer := c.peer
	if c.wire != nil {
		// The real write happens only once pacing completed, i.e. exactly
		// when the simulated delivery is committed; the peer's endpoint
		// redeems the frame by sequence number at delivery time.
		seq := c.wireSeq
		c.wireSeq++
		var werr error
		c.net.k.AwaitExternal(func() { werr = c.wire.Send(seq, seg.Payload) })
		if werr != nil {
			return fmt.Errorf("%w: wire: %v", ErrConnClosed, werr)
		}
		pw := peer.wire
		c.net.k.ScheduleAt(arrival, func() {
			var v any
			var err error
			c.net.k.AwaitExternal(func() { v, err = pw.Recv(seq) })
			if err != nil {
				return // stream torn down first: the segment dies with it
			}
			seg.Payload = v
			peer.inbox.TryPut(seg) // no-op if the peer already tore down
		})
		return nil
	}
	c.net.k.ScheduleAt(arrival, func() {
		peer.inbox.TryPut(seg) // no-op if the peer already tore down
	})
	return nil
}

// Recv blocks until a segment arrives and returns it.
func (c *Conn) Recv(p *sim.Proc) (Segment, error) {
	seg, err := c.inbox.Get(p)
	if err == sim.ErrQueueClosed {
		return Segment{}, ErrConnClosed
	}
	return seg, err
}

// TryRecv returns a queued segment without blocking.
func (c *Conn) TryRecv() (Segment, bool) {
	return c.inbox.TryGet()
}

// Close tears down this endpoint. The two directions are intentionally
// asymmetric:
//
//   - Segments already sent *by the closer* still arrive (TCP flushes
//     queued data on close): the peer's inbox stays open until the last
//     in-flight segment lands, and only then does the peer's blocked Recv
//     return ErrConnClosed.
//   - Segments still in flight *toward the closer* are silently dropped:
//     the closer's inbox closes immediately, so their delivery callbacks
//     TryPut into a closed queue and vanish — as with a real close(2),
//     which discards whatever later lands in the dead socket's buffer.
//
// TestConnCloseInFlightAsymmetry pins both halves of this contract.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.inbox.Close()
	peer := c.peer
	if peer == nil || peer.closed {
		return
	}
	peer.closed = true // no further sends from the peer either
	if c.wire != nil {
		// Tear the real stream down only after the last scheduled delivery
		// in either direction has had its chance to redeem its frame.
		drainAt := c.lastArrival
		if peer.lastArrival > drainAt {
			drainAt = peer.lastArrival
		}
		cw, pw := c.wire, peer.wire
		c.net.k.ScheduleAt(drainAt, func() {
			c.net.k.AwaitExternal(func() {
				cw.Close()
				pw.Close()
			})
		})
	}
	if c.lastArrival > c.net.k.Now() {
		c.net.k.ScheduleAt(c.lastArrival, func() { peer.inbox.Close() })
	} else {
		peer.inbox.Close()
	}
}

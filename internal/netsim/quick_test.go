package netsim

import (
	"testing"
	"testing/quick"

	"pvmigrate/internal/sim"
)

// Property: payload bytes are conserved end to end over TCP for arbitrary
// message-size sequences, and the link never carries fewer payload bytes
// than the messages it transported.
func TestPropTCPByteConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 12 {
			return true
		}
		k := sim.NewKernel()
		n := New(k, Params{})
		a, b := n.Attach(0), n.Attach(1)
		l, err := b.Listen(1)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range sizes {
			total += int(s)
		}
		received := 0
		k.Spawn("sink", func(p *sim.Proc) {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			for i := 0; i < len(sizes); i++ {
				seg, err := c.Recv(p)
				if err != nil {
					return
				}
				received += seg.Bytes
			}
		})
		k.Spawn("src", func(p *sim.Proc) {
			c, err := a.Dial(p, 1, 1)
			if err != nil {
				return
			}
			for _, s := range sizes {
				if c.Send(p, int(s), nil) != nil {
					return
				}
			}
		})
		if blocked := k.Run(); blocked != 0 {
			return false
		}
		if received != total {
			return false
		}
		// Wire accounting: the link carried at least the payload (plus the
		// handshake's 3×40 B).
		return n.Link().BytesCarried() >= int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: datagram fragmentation preserves FIFO per sender for arbitrary
// size sequences (including the loopback path).
func TestPropDgramFIFO(t *testing.T) {
	f := func(sizes []uint16, sameHost bool) bool {
		if len(sizes) == 0 || len(sizes) > 15 {
			return true
		}
		k := sim.NewKernel()
		n := New(k, Params{})
		a := n.Attach(0)
		dstHost := HostID(1)
		if sameHost {
			dstHost = 0
		}
		dst := n.Attach(dstHost)
		q, _ := dst.BindDgram(9)
		var got []int
		k.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < len(sizes); i++ {
				d, err := q.Get(p)
				if err != nil {
					return
				}
				got = append(got, d.Payload.(int))
			}
		})
		for i, s := range sizes {
			a.SendDgram(5, dstHost, 9, int(s), i)
		}
		if blocked := k.Run(); blocked != 0 {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return len(got) == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

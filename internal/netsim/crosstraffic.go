package netsim

import "pvmigrate/internal/sim"

// CrossTraffic injects background frames onto the shared Ethernet,
// modelling the paper's observation that on a shared worknet "network
// bandwidth fluctuates and strongly influences the execution of jobs".
// Frames arrive with exponential gaps sized so the wire carries the target
// utilization on average.
type CrossTraffic struct {
	k       *sim.Kernel
	proc    *sim.Proc
	stopped bool
}

// crossTrafficStop is the interrupt reason delivered to the sender proc.
type crossTrafficStop struct{}

// StartCrossTraffic begins injecting load at the given fraction of link
// capacity (0 < utilization < 1). The sender alternates one-MSS frames with
// exponentially distributed idle gaps.
func StartCrossTraffic(n *Network, seed uint64, utilization float64) *CrossTraffic {
	if utilization <= 0 || utilization >= 1 {
		panic("netsim: cross-traffic utilization must be in (0, 1)")
	}
	ct := &CrossTraffic{k: n.k}
	rng := sim.NewRNG(seed)
	frame := n.params.MSS
	frameTime := n.link.frameTime(frame)
	meanGap := sim.Time(float64(frameTime) * (1 - utilization) / utilization)
	ct.proc = n.k.Spawn("cross-traffic", func(p *sim.Proc) {
		for !ct.stopped {
			if err := n.link.Transmit(p, frame); err != nil {
				return
			}
			if err := p.Sleep(rng.ExpDuration(meanGap)); err != nil {
				return
			}
		}
	})
	return ct
}

// Stop ends the injection. The flag flip and the wake-up of the sender both
// run as a kernel event, so the halt lands at a well-defined virtual time
// regardless of which goroutine calls Stop.
func (c *CrossTraffic) Stop() {
	c.k.Schedule(0, func() {
		if c.stopped {
			return
		}
		c.stopped = true
		if c.proc != nil && !c.proc.Done() {
			c.proc.Interrupt(crossTrafficStop{})
		}
	})
}

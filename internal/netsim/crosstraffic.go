package netsim

import "pvmigrate/internal/sim"

// CrossTraffic injects background frames onto the shared Ethernet,
// modelling the paper's observation that on a shared worknet "network
// bandwidth fluctuates and strongly influences the execution of jobs".
// Frames arrive with exponential gaps sized so the wire carries the target
// utilization on average.
type CrossTraffic struct {
	stopped bool
}

// StartCrossTraffic begins injecting load at the given fraction of link
// capacity (0 < utilization < 1). The sender alternates one-MSS frames with
// exponentially distributed idle gaps.
func StartCrossTraffic(n *Network, seed uint64, utilization float64) *CrossTraffic {
	if utilization <= 0 || utilization >= 1 {
		panic("netsim: cross-traffic utilization must be in (0, 1)")
	}
	ct := &CrossTraffic{}
	rng := sim.NewRNG(seed)
	frame := n.params.MSS
	frameTime := n.link.frameTime(frame)
	meanGap := sim.Time(float64(frameTime) * (1 - utilization) / utilization)
	n.k.Spawn("cross-traffic", func(p *sim.Proc) {
		for !ct.stopped {
			if err := n.link.Transmit(p, frame); err != nil {
				return
			}
			if err := p.Sleep(rng.ExpDuration(meanGap)); err != nil {
				return
			}
		}
	})
	return ct
}

// Stop ends the injection after the current frame.
func (c *CrossTraffic) Stop() { c.stopped = true }

package netsim

// Wire is the pluggable real-transport backend behind Iface. When
// Params.Wire is non-nil, every cross-host frame additionally rides a real
// OS-level transport (internal/netwire binds loopback UDP sockets for
// datagrams and real TCP connections for streams): the payload is
// marshalled, written to a kernel socket, read back, and unmarshalled, and
// the *decoded* copy is what the receiver sees. Timing is untouched — the
// netsim link model still books every frame's wire time and the sim kernel
// remains the only clock (it pauses via sim.Kernel.AwaitExternal until the
// wire I/O completes) — so a wire-backed run is virtual-time-identical to
// an in-memory run while exercising real marshal → syscall → unmarshal on
// every cross-host payload.
//
// Same-host traffic never touches the backend: loopback delivery is a
// memory copy in both the model and reality, and local control messages
// legitimately carry non-serializable state (kernel-context reply
// closures).
//
// The contract between netsim and a backend:
//
//   - SendDgram is called at virtual send time and returns a token;
//     RecvDgram(token) is called inside AwaitExternal at virtual delivery
//     time and blocks until the datagram has crossed the socket. Every
//     token is eventually redeemed exactly once — even when the simulated
//     delivery is then dropped (host down, partition, closed port), so the
//     backend never leaks in-flight frames.
//   - Listen/CloseListen bracket a simulated TCP listener's lifetime; Dial
//     returns both endpoints of an established real connection, paired
//     with the simulated Conn endpoints. WireConn.Send is called after the
//     sender's pacing completes with a per-direction sequence number;
//     WireConn.Recv(seq) — on the *peer's* endpoint, inside AwaitExternal —
//     blocks until that frame arrives. Close (idempotent) tears the real
//     stream down after the last scheduled delivery.
//
// A marshal failure is a bug in a payload type, not a runtime condition:
// netsim panics on it loudly. Surfacing exactly those bugs is the reason
// the backend exists.
type Wire interface {
	// AttachHost readies the backend for traffic to and from host h
	// (netwire binds the host's UDP socket here).
	AttachHost(h HostID)
	// SendDgram ships one datagram payload and returns the token that
	// redeems it. The error is a marshal failure (netsim panics on it).
	SendDgram(src HostID, srcPort int, dst HostID, dstPort int, payload any) (token uint64, err error)
	// RecvDgram blocks until the datagram identified by token has crossed
	// the wire and returns the decoded payload. Called inside AwaitExternal.
	RecvDgram(token uint64) (any, error)
	// Listen opens the real listener paired with a simulated Listen.
	Listen(h HostID, port int) error
	// CloseListen tears down the real listener. Idempotent.
	CloseListen(h HostID, port int)
	// Dial establishes a real connection to (dst, port)'s listener and
	// returns the two paired endpoints.
	Dial(src, dst HostID, port int) (client, server WireConn, err error)
}

// WireConn is one endpoint of a real stream paired with a netsim Conn.
type WireConn interface {
	// Send marshals payload and writes it as frame seq. The error is a
	// marshal failure or a torn-down stream.
	Send(seq uint64, payload any) error
	// Recv blocks until frame seq (sent by the peer endpoint) has arrived
	// and returns the decoded payload; it errors when the stream was torn
	// down first. Called inside AwaitExternal.
	Recv(seq uint64) (any, error)
	// Close tears down the real stream. Idempotent; closing either
	// endpoint closes the underlying connection.
	Close()
}

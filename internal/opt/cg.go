package opt

import "math"

// CGTrainer implements the paper's outer loop: apply the net to the
// exemplars to obtain a gradient, use the gradient to modify the net,
// repeat until error passes a threshold or a predetermined number of
// iterations has been performed. The direction update is Polak-Ribière
// conjugate gradient with automatic restarts, and steps are chosen by a
// backtracking (Armijo) line search on the loss.
type CGTrainer struct {
	Net *Net

	prevGrad []float64
	dir      []float64

	// Losses records the loss after each iteration.
	Losses []float64
}

// NewCGTrainer wraps a network.
func NewCGTrainer(n *Net) *CGTrainer { return &CGTrainer{Net: n} }

// Direction consumes a fresh (mean) gradient and returns the CG search
// direction, applying the Polak-Ribière update with restart on
// non-descent.
func (t *CGTrainer) Direction(grad []float64) []float64 {
	if t.dir == nil {
		t.prevGrad = append([]float64(nil), grad...)
		t.dir = make([]float64, len(grad))
		for i, g := range grad {
			t.dir[i] = -g
		}
		return t.dir
	}
	// beta_PR = g·(g - g_prev) / (g_prev·g_prev)
	var num, den float64
	for i, g := range grad {
		num += g * (g - t.prevGrad[i])
		den += t.prevGrad[i] * t.prevGrad[i]
	}
	beta := 0.0
	if den > 0 {
		beta = num / den
	}
	if beta < 0 {
		beta = 0 // PR+ restart
	}
	var descent float64
	for i, g := range grad {
		t.dir[i] = -g + beta*t.dir[i]
		descent += t.dir[i] * g
	}
	if descent >= 0 { // not a descent direction: restart with steepest descent
		for i, g := range grad {
			t.dir[i] = -g
		}
	}
	copy(t.prevGrad, grad)
	return t.dir
}

// TrainerState is a deep copy of the trainer's CG memory (previous gradient
// and search direction), for checkpoint/rollback: restoring it and the net
// replays training bit-for-bit from the snapshot point.
type TrainerState struct {
	PrevGrad []float64
	Dir      []float64
}

// Snapshot captures the CG memory.
func (t *CGTrainer) Snapshot() TrainerState {
	return TrainerState{
		PrevGrad: append([]float64(nil), t.prevGrad...),
		Dir:      append([]float64(nil), t.dir...),
	}
}

// Restore rewinds the CG memory to a snapshot.
func (t *CGTrainer) Restore(s TrainerState) {
	t.prevGrad = append([]float64(nil), s.PrevGrad...)
	t.dir = append([]float64(nil), s.Dir...)
}

// LineSearch finds a step along dir that satisfies the Armijo condition,
// evaluating the loss on the given set (forward passes only — much cheaper
// than gradients). It returns the accepted step and the resulting loss, and
// leaves the net updated.
func (t *CGTrainer) LineSearch(set *ExemplarSet, grad, dir []float64) (float64, float64) {
	n := t.Net
	base := n.Flat()
	loss0 := n.Loss(set)
	var slope float64
	for i := range grad {
		slope += grad[i] * dir[i]
	}
	if slope >= 0 {
		// Defensive: should not happen after Direction's restart logic.
		t.Losses = append(t.Losses, loss0)
		return 0, loss0
	}
	const c1 = 1e-4
	step := 1.0
	trial := make([]float64, len(base))
	for iter := 0; iter < 30; iter++ {
		for i := range base {
			trial[i] = base[i] + step*dir[i]
		}
		n.SetFlat(trial)
		loss := n.Loss(set)
		if loss <= loss0+c1*step*slope {
			t.Losses = append(t.Losses, loss)
			return step, loss
		}
		step *= 0.5
	}
	// No improving step found: keep the original parameters.
	n.SetFlat(base)
	t.Losses = append(t.Losses, loss0)
	return 0, loss0
}

// Step runs one full training iteration on the set (gradient over all
// exemplars, CG direction, line search) and returns the post-step loss.
func (t *CGTrainer) Step(set *ExemplarSet) float64 {
	g := NewGradient(t.Net)
	t.Net.AccumulateGradient(set, 0, set.Len(), g)
	grad := g.Flat()
	dir := t.Direction(grad)
	_, loss := t.LineSearch(set, grad, dir)
	return loss
}

// Train runs up to maxIter iterations, stopping early when the loss drops
// below threshold. It returns the final loss.
func (t *CGTrainer) Train(set *ExemplarSet, maxIter int, threshold float64) float64 {
	loss := math.Inf(1)
	for i := 0; i < maxIter; i++ {
		loss = t.Step(set)
		if loss < threshold {
			break
		}
	}
	return loss
}

// Accuracy returns the net's classification accuracy on the set.
func (t *CGTrainer) Accuracy(set *ExemplarSet) float64 {
	correct := 0
	for i := 0; i < set.Len(); i++ {
		x, label := set.Exemplar(i)
		if t.Net.Classify(x) == label {
			correct++
		}
	}
	return float64(correct) / float64(set.Len())
}

package opt

import (
	"errors"
	"fmt"

	"pvmigrate/internal/core"
)

// Message tags of the parallel Opt protocol.
const (
	TagShard = 11 // master → slave: initial exemplar shard
	TagNet   = 12 // master → slave: current network, start an iteration
	TagGrad  = 13 // slave → master: partial gradient + partial loss
	TagDone  = 14 // master → slave: training finished
	TagProbe = 15 // master → slave: line-search trial point (direction+step)
	TagLoss  = 16 // slave → master: partial loss at the trial point
)

// Params configures a parallel Opt run.
type Params struct {
	// Network shape. The defaults (64→32→16) model a speech classifier
	// whose exemplars are 64 floats + a category.
	InputDim, Hidden, Classes int
	// TotalBytes is the training-set size (the paper's per-experiment MB).
	TotalBytes int
	// Iterations is the predetermined iteration count (§4.0).
	Iterations int
	// Seed drives synthetic data and weight init.
	Seed uint64
	// Real carries and crunches actual exemplar data (small sets only);
	// otherwise only sizes move and work is charged to the virtual CPU.
	Real bool
	// Overhead multiplies per-exemplar compute cost (ADMopt ≈ 1.23).
	Overhead float64
	// Step is the initial update step (adapted during training).
	Step float64
	// LineSearch enables the distributed Armijo line search: instead of a
	// fixed adaptive step, the master broadcasts trial points and the
	// slaves evaluate partial losses — extra protocol rounds per iteration,
	// but the same monotone descent guarantee as the serial trainer.
	LineSearch bool
	// OnStateBytes, if set, is told the slave's resident state size once
	// the shard arrives — MPVM uses it to size the migratable image.
	OnStateBytes func(bytes int)
}

func (p Params) withDefaults() Params {
	if p.InputDim == 0 {
		p.InputDim = 64
	}
	if p.Hidden == 0 {
		p.Hidden = 32
	}
	if p.Classes == 0 {
		p.Classes = 16
	}
	if p.TotalBytes == 0 {
		p.TotalBytes = 600_000
	}
	if p.Iterations == 0 {
		p.Iterations = 4
	}
	if p.Step == 0 {
		p.Step = 0.5
	}
	if p.Overhead == 0 {
		p.Overhead = 1.0
	}
	return p
}

// WithDefaults returns the params with unset fields filled in — for callers
// outside the package (internal/ft) that re-implement the master/slave loop
// and must agree with RunMaster on every defaulted value.
func (p Params) WithDefaults() Params { return p.withDefaults() }

// Cost returns the parameterized cost model.
func (p Params) Cost() CostModel {
	p = p.withDefaults()
	return CostModel{InputDim: p.InputDim, Hidden: p.Hidden, Classes: p.Classes,
		OverheadFactor: p.Overhead}
}

// NumExemplars returns the exemplar count implied by TotalBytes.
func (p Params) NumExemplars() int {
	p = p.withDefaults()
	n := p.TotalBytes / ExemplarBytes(p.InputDim)
	if n < 1 {
		n = 1
	}
	return n
}

// Result summarizes a master's run.
type Result struct {
	Iterations int
	FinalLoss  float64 // NaN in cost-model mode
	Losses     []float64
}

// RunMaster executes the master VP: distribute exemplar shards, then per
// iteration broadcast the net, collect partial gradients (in fixed slave
// order, for deterministic reduction), combine, and update with a CG
// direction and an adaptive step (§4.0's two-step apply/modify loop).
func RunMaster(vp core.VP, slaves []core.TID, p Params) (*Result, error) {
	p = p.withDefaults()
	if len(slaves) == 0 {
		return nil, errors.New("opt: master needs at least one slave")
	}
	cost := p.Cost()
	nEx := p.NumExemplars()

	var set *ExemplarSet
	var net *Net
	var trainer *CGTrainer
	if p.Real {
		set = GenerateExemplars(nEx, p.InputDim, p.Classes, p.Seed)
		net = NewNet(p.InputDim, p.Hidden, p.Classes, p.Seed+1)
		trainer = NewCGTrainer(net)
	}

	// Distribute shards ("data is equally distributed among the slaves").
	counts := evenCounts(nEx, len(slaves))
	lo := 0
	for i, s := range slaves {
		n := counts[i]
		buf := core.NewBuffer().PkInt(n).PkVirtual(n * ExemplarBytes(p.InputDim))
		if p.Real {
			shard := set.Slice(lo, lo+n)
			buf.PkFloat64s(shard.features)
			labels := make([]float64, n)
			for j, l := range shard.labels {
				labels[j] = float64(l)
			}
			buf.PkFloat64s(labels)
		}
		if err := vp.Send(s, TagShard, buf); err != nil {
			return nil, fmt.Errorf("opt: shard to %v: %w", s, err)
		}
		lo += n
	}

	res := &Result{}
	step := p.Step
	prevLoss := 0.0
	var flatNet []float64
	for iter := 0; iter < p.Iterations; iter++ {
		netBuf := core.NewBuffer().PkInt(iter).PkVirtual(cost.NetBytes())
		if p.Real {
			flatNet = net.Flat()
			netBuf.PkFloat64s(flatNet)
		}
		for _, s := range slaves {
			if err := vp.Send(s, TagNet, netBuf); err != nil {
				return nil, err
			}
		}
		// Collect partial gradients in fixed order.
		total := NewGradient(&Net{InputDim: p.InputDim, Hidden: p.Hidden, Classes: p.Classes,
			W1: make([]float64, p.Hidden*p.InputDim), B1: make([]float64, p.Hidden),
			W2: make([]float64, p.Classes*p.Hidden), B2: make([]float64, p.Classes)})
		var lossSum float64
		for _, s := range slaves {
			_, _, r, err := vp.Recv(s, TagGrad)
			if err != nil {
				return nil, fmt.Errorf("opt: gradient from %v: %w", s, err)
			}
			pl, cnt, g, err := unpackGradient(r, p)
			if err != nil {
				return nil, err
			}
			lossSum += pl
			if p.Real {
				total.Add(g)
			} else {
				total.Count += cnt
			}
		}
		// Combine + CG update.
		if err := vp.Compute(cost.UpdateFlops(len(slaves))); err != nil {
			return nil, err
		}
		if p.Real {
			meanLoss := lossSum / float64(nEx)
			res.Losses = append(res.Losses, meanLoss)
			res.FinalLoss = meanLoss
			grad := total.Flat()
			dir := trainer.Direction(grad)
			if p.LineSearch {
				accepted, err := distributedLineSearch(vp, slaves, p, net, grad, dir, lossSum, nEx)
				if err != nil {
					return nil, err
				}
				_ = accepted
			} else {
				if iter > 0 && meanLoss > prevLoss {
					step *= 0.5
				}
				prevLoss = meanLoss
				flat := net.Flat()
				for i := range flat {
					flat[i] += step * dir[i]
				}
				net.SetFlat(flat)
			}
		}
		res.Iterations++
	}
	done := core.NewBuffer().PkInt(-1)
	for _, s := range slaves {
		if err := vp.Send(s, TagDone, done); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// distributedLineSearch runs the Armijo backtracking loop over the wire:
// the master broadcasts (direction, step) trial points; every slave
// evaluates the loss of its shard at the trial weights and returns the
// partial sum. The accepted step updates the master's net; slaves learn the
// final weights with the next TagNet broadcast. Returns the accepted step
// (0 when no improving step was found, leaving the net unchanged).
func distributedLineSearch(vp core.VP, slaves []core.TID, p Params,
	net *Net, grad, dir []float64, lossSum0 float64, nEx int) (float64, error) {

	var slope float64
	for i := range grad {
		slope += grad[i] * dir[i]
	}
	if slope >= 0 {
		return 0, nil // defensive; Direction restarts on non-descent
	}
	const c1 = 1e-4
	loss0 := lossSum0 / float64(nEx)
	base := net.Flat()
	step := 1.0
	for try := 0; try < 12; try++ {
		probe := core.NewBuffer().PkFloat64s([]float64{step}).PkFloat64s(dir).
			PkVirtual(len(dir) * 4)
		for _, s := range slaves {
			if err := vp.Send(s, TagProbe, probe); err != nil {
				return 0, err
			}
		}
		var trialSum float64
		for range slaves {
			_, _, r, err := vp.Recv(core.AnyTID, TagLoss)
			if err != nil {
				return 0, err
			}
			v, err := r.UpkFloat64s()
			if err != nil {
				return 0, err
			}
			trialSum += v[0]
		}
		trial := trialSum / float64(nEx)
		if trial <= loss0+c1*step*slope {
			flat := make([]float64, len(base))
			for i := range base {
				flat[i] = base[i] + step*dir[i]
			}
			net.SetFlat(flat)
			return step, nil
		}
		step *= 0.5
	}
	net.SetFlat(base)
	return 0, nil
}

func evenCounts(total, n int) []int {
	counts := make([]int, n)
	base := total / n
	rem := total % n
	for i := range counts {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
	}
	return counts
}

// RunSlave executes a slave VP: receive the shard, then per iteration
// receive the net, compute the partial gradient over the local exemplars
// (charged to the virtual CPU; with Real data the actual backprop runs
// too), and return it with the partial loss.
func RunSlave(vp core.VP, master core.TID, p Params) error {
	p = p.withDefaults()
	cost := p.Cost()

	_, _, r, err := vp.Recv(master, TagShard)
	if err != nil {
		return fmt.Errorf("opt: slave shard: %w", err)
	}
	count, err := r.UpkInt()
	if err != nil {
		return err
	}
	shardBytes, err := r.UpkVirtual()
	if err != nil {
		return err
	}
	var local *ExemplarSet
	if p.Real {
		feats, err := r.UpkFloat64s()
		if err != nil {
			return err
		}
		flabels, err := r.UpkFloat64s()
		if err != nil {
			return err
		}
		labels := make([]int, len(flabels))
		for i, f := range flabels {
			labels[i] = int(f)
		}
		local = &ExemplarSet{Dim: p.InputDim, Classes: p.Classes,
			features: feats, labels: labels, ids: make([]int, count)}
	}
	if p.OnStateBytes != nil {
		p.OnStateBytes(shardBytes + cost.NetBytes())
	}

	net := &Net{InputDim: p.InputDim, Hidden: p.Hidden, Classes: p.Classes}
	for {
		_, tag, r, err := vp.Recv(master, core.AnyTag)
		if err != nil {
			return err
		}
		if tag == TagDone {
			return nil
		}
		if tag == TagProbe {
			if err := answerProbe(vp, master, p, cost, net, local, count, r); err != nil {
				return err
			}
			continue
		}
		if tag != TagNet {
			continue
		}
		if _, err := r.UpkInt(); err != nil { // iteration number
			return err
		}
		if _, err := r.UpkVirtual(); err != nil {
			return err
		}
		if p.Real {
			flat, err := r.UpkFloat64s()
			if err != nil {
				return err
			}
			if net.W1 == nil {
				net.W1 = make([]float64, p.Hidden*p.InputDim)
				net.B1 = make([]float64, p.Hidden)
				net.W2 = make([]float64, p.Classes*p.Hidden)
				net.B2 = make([]float64, p.Classes)
			}
			if err := net.SetFlat(flat); err != nil {
				return err
			}
		}
		// Apply the net to the local exemplars: the dominant cost.
		if err := vp.Compute(cost.GradientFlops(count)); err != nil {
			return err
		}
		gradBuf := core.NewBuffer()
		var partialLoss float64
		if p.Real {
			g := NewGradient(net)
			net.AccumulateGradient(local, 0, local.Len(), g)
			partialLoss = net.Loss(local) * float64(local.Len())
			packGradient(gradBuf, partialLoss, g)
		} else {
			gradBuf.PkFloat64s([]float64{0}).PkInt(count).PkVirtual(cost.NetBytes())
		}
		if err := vp.Send(master, TagGrad, gradBuf); err != nil {
			return err
		}
	}
}

func packGradient(buf *core.Buffer, partialLoss float64, g *Gradient) {
	buf.PkFloat64s([]float64{partialLoss}).PkInt(g.Count)
	buf.PkFloat64s(g.W1).PkFloat64s(g.B1).PkFloat64s(g.W2).PkFloat64s(g.B2)
}

func unpackGradient(r *core.Reader, p Params) (partialLoss float64, count int, g *Gradient, err error) {
	pl, err := r.UpkFloat64s()
	if err != nil {
		return 0, 0, nil, err
	}
	count, err = r.UpkInt()
	if err != nil {
		return 0, 0, nil, err
	}
	if !p.Real {
		if _, err := r.UpkVirtual(); err != nil {
			return 0, 0, nil, err
		}
		return pl[0], count, nil, nil
	}
	g = &Gradient{Count: count}
	if g.W1, err = r.UpkFloat64s(); err != nil {
		return 0, 0, nil, err
	}
	if g.B1, err = r.UpkFloat64s(); err != nil {
		return 0, 0, nil, err
	}
	if g.W2, err = r.UpkFloat64s(); err != nil {
		return 0, 0, nil, err
	}
	if g.B2, err = r.UpkFloat64s(); err != nil {
		return 0, 0, nil, err
	}
	return pl[0], count, g, nil
}

// answerProbe evaluates the slave's partial loss at a line-search trial
// point (current weights + step × direction) and returns it to the master.
func answerProbe(vp core.VP, master core.TID, p Params, cost CostModel,
	net *Net, local *ExemplarSet, count int, r *core.Reader) error {

	stepV, err := r.UpkFloat64s()
	if err != nil {
		return err
	}
	dir, err := r.UpkFloat64s()
	if err != nil {
		return err
	}
	if _, err := r.UpkVirtual(); err != nil {
		return err
	}
	// A forward pass over the shard (cheaper than a gradient).
	if err := vp.Compute(float64(count) * cost.LossFlopsPerExemplar()); err != nil {
		return err
	}
	var partial float64
	if p.Real && local != nil {
		base := net.Flat()
		trial := make([]float64, len(base))
		for i := range base {
			trial[i] = base[i] + stepV[0]*dir[i]
		}
		probeNet := &Net{InputDim: net.InputDim, Hidden: net.Hidden, Classes: net.Classes,
			W1: make([]float64, len(net.W1)), B1: make([]float64, len(net.B1)),
			W2: make([]float64, len(net.W2)), B2: make([]float64, len(net.B2))}
		if err := probeNet.SetFlat(trial); err != nil {
			return err
		}
		partial = probeNet.Loss(local) * float64(local.Len())
	}
	return vp.Send(master, TagLoss, core.NewBuffer().PkFloat64s([]float64{partial}))
}

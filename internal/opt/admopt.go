package opt

import (
	"math"

	"pvmigrate/internal/adm"
	"pvmigrate/internal/core"
	"pvmigrate/internal/sim"
)

// TagADM carries all ADMopt coordination messages (ops encoded in the
// buffer: redist-request, enter-redist, state, plan, frag, redist-done,
// redist-complete).
const TagADM = 21

// ADMParams extends Params with the data-movement cost knobs.
type ADMParams struct {
	Params
	// ChunkExemplars is the inner-loop granularity between migration-event
	// flag checks (rapid response requires small chunks; each check costs
	// a conditional — part of ADM's overhead).
	ChunkExemplars int
	// MergeFlopsPerByte charges the receiver for integrating absorbed
	// exemplars into its arrays and flag structures (fitted to Table 6's
	// effective redistribution rate).
	MergeFlopsPerByte float64
	// RedistFixedFlops charges each participant for the repartitioning
	// computation and synchronization bookkeeping per redistribution round.
	RedistFixedFlops float64
	// Stats collects measurements across the application's VPs.
	Stats *ADMStats
}

// ADMStats aggregates what the ADMopt VPs observed.
type ADMStats struct {
	// Records holds one entry per withdrawal, with Start = the moment the
	// migration signal reached the slave and Reintegrated = receipt of the
	// master's redistribution-complete message (the paper's ADM
	// obtrusiveness == migration cost, §4.3.3).
	Records []core.MigrationRecord
	// Redistributions counts completed redistribution rounds.
	Redistributions int
	// FinalLoss is the master's last mean loss (real mode).
	FinalLoss float64
}

func (p ADMParams) withDefaults() ADMParams {
	p.Params = p.Params.withDefaults()
	p.LineSearch = false // the ADM protocol uses the fixed adaptive step
	if p.Overhead == 1.0 {
		// ADM's measured quiet-case penalty (Table 5): the FSM switch,
		// per-chunk flag checks, and the processed-exemplar array.
		p.Overhead = 1.23
		p.Params.Overhead = 1.23
	}
	if p.ChunkExemplars == 0 {
		p.ChunkExemplars = 100
	}
	if p.MergeFlopsPerByte == 0 {
		p.MergeFlopsPerByte = 8.2
	}
	if p.RedistFixedFlops == 0 {
		p.RedistFixedFlops = 6.5e6
	}
	if p.Stats == nil {
		p.Stats = &ADMStats{}
	}
	return p
}

// admFSM builds the Figure 4 state machine for a slave: normal computing,
// migration event and load redistribution, and inactivity when a process
// has no data over which to compute.
func admFSM() *adm.FSM {
	f := adm.NewFSM("compute")
	f.On("compute", "net-received", "compute"). // new iteration begins
							On("compute", "migration-event", "redistribute").
							On("compute", "enter-redist", "redistribute").
							On("compute", "iteration-done", "reduce").
							On("compute", "done", "finished").
							On("reduce", "net-received", "compute").
							On("reduce", "enter-redist", "redistribute").
							On("reduce", "done", "finished").
							On("redistribute", "redistributed", "compute").
							On("redistribute", "withdrawn", "inactive").
							On("inactive", "done", "finished")
	return f
}

// slaveState is a slave's report to the master at redistribution time.
type slaveState struct {
	rank        int
	count       int
	power       float64
	withdrawing bool
}

// RunADMMaster executes the ADMopt master: the same gradient/update loop as
// RunMaster, but interleaved with redistribution rounds whenever a slave
// reports a migration event. Withdrawn slaves leave the active set; their
// partially accumulated gradients are handed to the master so every
// exemplar contributes exactly once per iteration.
func RunADMMaster(vp core.VP, slaves []core.TID, ap ADMParams) (*Result, error) {
	ap = ap.withDefaults()
	p := ap.Params
	cost := p.Cost()
	nEx := p.NumExemplars()

	var set *ExemplarSet
	var net *Net
	var trainer *CGTrainer
	if p.Real {
		set = GenerateExemplars(nEx, p.InputDim, p.Classes, p.Seed)
		net = NewNet(p.InputDim, p.Hidden, p.Classes, p.Seed+1)
		trainer = NewCGTrainer(net)
	}

	// Distribute shards with global id ranges for the processed-flag
	// tracking.
	counts := evenCounts(nEx, len(slaves))
	lo := 0
	for i, s := range slaves {
		n := counts[i]
		buf := core.NewBuffer().PkInt(n).PkInt(lo).PkVirtual(n * ExemplarBytes(p.InputDim))
		if p.Real {
			shard := set.Slice(lo, lo+n)
			buf.PkFloat64s(shard.features)
			labels := make([]float64, n)
			for j, l := range shard.labels {
				labels[j] = float64(l)
			}
			buf.PkFloat64s(labels)
		}
		if err := vp.Send(s, TagShard, buf); err != nil {
			return nil, err
		}
		lo += n
	}

	active := make(map[core.TID]bool, len(slaves))
	for _, s := range slaves {
		active[s] = true
	}
	res := &Result{}
	step := p.Step
	prevLoss := 0.0
	for iter := 0; iter < p.Iterations; iter++ {
		netBuf := core.NewBuffer().PkInt(iter).PkVirtual(cost.NetBytes())
		if p.Real {
			netBuf.PkFloat64s(net.Flat())
		}
		for _, s := range slaves {
			if active[s] {
				if err := vp.Send(s, TagNet, netBuf); err != nil {
					return nil, err
				}
			}
		}
		total := NewGradient(&Net{InputDim: p.InputDim, Hidden: p.Hidden, Classes: p.Classes,
			W1: make([]float64, p.Hidden*p.InputDim), B1: make([]float64, p.Hidden),
			W2: make([]float64, p.Classes*p.Hidden), B2: make([]float64, p.Classes)})
		var lossSum float64
		pending := make(map[core.TID]bool)
		for s, a := range active {
			if a {
				pending[s] = true
			}
		}
		for len(pending) > 0 {
			src, tag, r, err := vp.Recv(core.AnyTID, core.AnyTag)
			if err != nil {
				return nil, err
			}
			switch tag {
			case TagGrad:
				pl, cnt, g, err := unpackGradient(r, p)
				if err != nil {
					return nil, err
				}
				lossSum += pl
				if p.Real {
					total.Add(g)
				} else {
					total.Count += cnt
				}
				delete(pending, src)
			case TagADM:
				op, _ := r.UpkString()
				if op != "redist-request" {
					continue
				}
				withdrawn, heldLoss, heldGrad, err := runRedistribution(vp, slaves, active, src, r, ap)
				if err != nil {
					return nil, err
				}
				if withdrawn != core.NoTID {
					active[withdrawn] = false
					if pending[withdrawn] {
						// Its processed exemplars' contribution arrives
						// with the withdrawal; the unprocessed ones moved
						// to still-pending receivers.
						lossSum += heldLoss
						if p.Real && heldGrad != nil {
							total.Add(heldGrad)
						} else if heldGrad != nil {
							total.Count += heldGrad.Count
						}
						delete(pending, withdrawn)
					}
				}
				ap.Stats.Redistributions++
			}
		}
		if err := vp.Compute(cost.UpdateFlops(len(slaves))); err != nil {
			return nil, err
		}
		if p.Real {
			meanLoss := lossSum / float64(nEx)
			if iter > 0 && meanLoss > prevLoss {
				step *= 0.5
			}
			prevLoss = meanLoss
			res.Losses = append(res.Losses, meanLoss)
			res.FinalLoss = meanLoss
			ap.Stats.FinalLoss = meanLoss
			dir := trainer.Direction(total.Flat())
			flat := net.Flat()
			for i := range flat {
				flat[i] += step * dir[i]
			}
			net.SetFlat(flat)
		}
		res.Iterations++
	}
	done := core.NewBuffer().PkInt(-1)
	for _, s := range slaves {
		if err := vp.Send(s, TagDone, done); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runRedistribution coordinates one redistribution round at the master.
// The requester's "redist-request" has already been received; its reader r
// carries the request details.
func runRedistribution(vp core.VP, slaves []core.TID, active map[core.TID]bool,
	requester core.TID, r *core.Reader, ap ADMParams) (withdrawn core.TID, heldLoss float64, heldGrad *Gradient, err error) {

	withdrawFlag, _ := r.UpkInt()

	// Tell every active slave to pause at its next flag check.
	enter := core.NewBuffer().PkString("enter-redist")
	for _, s := range slaves {
		if active[s] {
			if err := vp.Send(s, TagADM, enter); err != nil {
				return core.NoTID, 0, nil, err
			}
		}
	}
	// Collect states. The withdrawing slave attaches its partial gradient.
	states := make(map[core.TID]*slaveState)
	for {
		allIn := true
		for _, s := range slaves {
			if active[s] && states[s] == nil {
				allIn = false
			}
		}
		if allIn {
			break
		}
		src, tag, sr, err := vp.Recv(core.AnyTID, TagADM)
		if err != nil {
			return core.NoTID, 0, nil, err
		}
		_ = tag
		op, _ := sr.UpkString()
		if op != "state" {
			continue
		}
		st := &slaveState{}
		st.rank, _ = sr.UpkInt()
		st.count, _ = sr.UpkInt()
		pw, _ := sr.UpkFloat64s()
		st.power = pw[0]
		w, _ := sr.UpkInt()
		st.withdrawing = w == 1
		if st.withdrawing {
			pl, cnt, g, gerr := unpackGradient(sr, ap.Params)
			if gerr == nil {
				heldLoss, heldGrad = pl, g
				if g == nil {
					heldGrad = &Gradient{Count: cnt}
				}
				withdrawn = src
			}
		}
		states[src] = st
	}
	_ = withdrawFlag

	// Recompute the partition over the remaining active slaves.
	n := len(slaves)
	powers := make([]float64, n)
	act := make([]bool, n)
	current := make([]int, n)
	total := 0
	rankOf := make(map[core.TID]int, n)
	for i, s := range slaves {
		rankOf[s] = i
		if !active[s] {
			continue
		}
		st := states[s]
		current[i] = st.count
		total += st.count
		powers[i] = st.power
		act[i] = !st.withdrawing
	}
	target, err := adm.Partition(total, powers, act)
	if err != nil {
		return core.NoTID, 0, nil, err
	}
	moves, err := adm.PlanMoves(current, target)
	if err != nil {
		return core.NoTID, 0, nil, err
	}
	// Broadcast the plan: each slave learns its outgoing moves and its
	// expected incoming exemplar count.
	incoming := make([]int, n)
	for _, m := range moves {
		incoming[m.To] += m.Count
	}
	planBuf := core.NewBuffer().PkString("plan").PkInt(len(moves))
	for _, m := range moves {
		planBuf.PkInt(m.From).PkInt(m.To).PkInt(m.Count)
	}
	for i := range slaves {
		planBuf.PkInt(incoming[i])
	}
	for _, s := range slaves {
		if active[s] {
			if err := vp.Send(s, TagADM, planBuf); err != nil {
				return core.NoTID, 0, nil, err
			}
		}
	}
	// Await completion acks, then release everyone.
	acks := 0
	want := 0
	for _, s := range slaves {
		if active[s] {
			want++
		}
	}
	for acks < want {
		_, _, ar, err := vp.Recv(core.AnyTID, TagADM)
		if err != nil {
			return core.NoTID, 0, nil, err
		}
		op, _ := ar.UpkString()
		if op == "redist-done" {
			acks++
		}
	}
	complete := core.NewBuffer().PkString("redist-complete")
	for _, s := range slaves {
		if active[s] {
			if err := vp.Send(s, TagADM, complete); err != nil {
				return core.NoTID, 0, nil, err
			}
		}
	}
	return withdrawn, heldLoss, heldGrad, nil
}

// RunADMSlave executes one ADMopt slave: the event-driven finite-state
// machine of Figure 4, with migration-event flag checks embedded in the
// inner computational loop (paper §2.3).
func RunADMSlave(vp core.VP, master core.TID, rank int, peers []core.TID,
	events *adm.EventQueue, ap ADMParams) error {

	ap = ap.withDefaults()
	p := ap.Params
	cost := p.Cost()
	fsm := admFSM()

	// Shard arrival.
	_, _, r, err := vp.Recv(master, TagShard)
	if err != nil {
		return err
	}
	count, _ := r.UpkInt()
	idLo, _ := r.UpkInt()
	if _, err := r.UpkVirtual(); err != nil {
		return err
	}
	shard := adm.NewShard(idLo, idLo+count)
	var local *ExemplarSet
	if p.Real {
		feats, _ := r.UpkFloat64s()
		flabels, err := r.UpkFloat64s()
		if err != nil {
			return err
		}
		labels := make([]int, len(flabels))
		for i, f := range flabels {
			labels[i] = int(f)
		}
		ids := make([]int, count)
		for i := range ids {
			ids[i] = idLo + i
		}
		local = &ExemplarSet{Dim: p.InputDim, Classes: p.Classes,
			features: feats, labels: labels, ids: ids}
		local = local.Own()
	}

	sl := &admSlave{
		vp: vp, master: master, rank: rank, peers: peers,
		events: events, ap: ap, cost: cost, fsm: fsm,
		shard: shard, local: local,
		tracker: adm.NewTracker(),
		net:     &Net{InputDim: p.InputDim, Hidden: p.Hidden, Classes: p.Classes},
	}
	return sl.run()
}

// admSlave bundles one slave's state.
type admSlave struct {
	vp     core.VP
	master core.TID
	rank   int
	peers  []core.TID
	events *adm.EventQueue
	ap     ADMParams
	cost   CostModel
	fsm    *adm.FSM

	shard   *adm.Shard
	local   *ExemplarSet // real mode only; ids parallel shard.IDs
	tracker *adm.Tracker
	net     *Net

	grad        *Gradient
	partialLoss float64
	withdrawing bool
	withdrawAt  int64 // event arrival, ns
	// cursor: every shard index below it has been examined this iteration
	// (processed or skipped-as-processed), so chunk collection is O(chunk)
	// instead of rescanning the whole shard.
	cursor int
}

func (s *admSlave) run() error {
	p := s.ap.Params
	for {
		// reduce state: wait for the net (or control traffic).
		_, tag, r, err := s.vp.Recv(core.AnyTID, core.AnyTag)
		if err != nil {
			return err
		}
		switch tag {
		case TagDone:
			s.fire("done")
			return nil
		case TagADM:
			op, _ := r.UpkString()
			if op == "enter-redist" {
				s.fire("enter-redist")
				if err := s.participateRedist(false); err != nil {
					return err
				}
				if s.withdrawing {
					return s.waitDone()
				}
				s.fire("redistributed")
			}
			continue
		case TagNet:
			// fall through to the iteration below
		default:
			continue
		}
		s.fire("net-received")
		if _, err := r.UpkInt(); err != nil {
			return err
		}
		if _, err := r.UpkVirtual(); err != nil {
			return err
		}
		if p.Real {
			flat, err := r.UpkFloat64s()
			if err != nil {
				return err
			}
			if s.net.W1 == nil {
				s.net.W1 = make([]float64, p.Hidden*p.InputDim)
				s.net.B1 = make([]float64, p.Hidden)
				s.net.W2 = make([]float64, p.Classes*p.Hidden)
				s.net.B2 = make([]float64, p.Classes)
			}
			s.net.SetFlat(flat)
		}
		// One iteration: process every unprocessed local exemplar, in
		// chunks, with flag checks between chunks.
		s.cursor = 0
		s.tracker.Reset()
		s.shard.SyncFlags(s.tracker) // no-op at iteration start (all false)
		s.grad = nil
		s.partialLoss = 0
		if p.Real {
			s.grad = NewGradient(s.net)
		}
		if err := s.iterate(); err != nil {
			return err
		}
		if s.withdrawing {
			return s.waitDone()
		}
		// iteration-done: ship the partial gradient.
		buf := core.NewBuffer()
		if p.Real {
			packGradient(buf, s.partialLoss, s.grad)
		} else {
			buf.PkFloat64s([]float64{0}).PkInt(s.tracker.Done()).PkVirtual(s.cost.NetBytes())
		}
		s.fire("iteration-done")
		if err := s.vp.Send(s.master, TagGrad, buf); err != nil {
			return err
		}
	}
}

// iterate processes unprocessed exemplars chunk by chunk until none remain
// (absorbed exemplars extend the work), checking for migration events
// between chunks.
func (s *admSlave) iterate() error {
	for {
		// Collect the next chunk of unprocessed exemplars, resuming the
		// scan where the previous chunk left off.
		var chunkIdx []int
		for s.cursor < s.shard.Len() && len(chunkIdx) < s.ap.ChunkExemplars {
			if !s.tracker.Processed(s.shard.IDs[s.cursor]) {
				chunkIdx = append(chunkIdx, s.cursor)
			}
			s.cursor++
		}
		if len(chunkIdx) == 0 {
			return nil
		}
		if err := s.vp.Compute(s.cost.GradientFlops(len(chunkIdx))); err != nil {
			return err
		}
		for _, i := range chunkIdx {
			id := s.shard.IDs[i]
			if !s.tracker.MarkProcessed(id) {
				continue
			}
			if s.ap.Real {
				j := s.localIndexOf(id)
				if j >= 0 {
					s.net.AccumulateGradient(s.local, j, j+1, s.grad)
					x, label := s.local.Exemplar(j)
					hid := make([]float64, s.net.Hidden)
					out := make([]float64, s.net.Classes)
					s.net.forward(x, hid, out)
					pr := out[label]
					if pr < 1e-300 {
						pr = 1e-300
					}
					s.partialLoss += -math.Log(pr)
				}
			}
		}
		// The migration-event flag check (and any pending coordination).
		if s.events.Pending() {
			ev, _ := s.events.Take()
			s.withdrawing = ev.Kind == "withdraw"
			s.withdrawAt = int64(ev.At)
			s.fire("migration-event")
			req := core.NewBuffer().PkString("redist-request").PkInt(boolToInt(s.withdrawing))
			if err := s.vp.Send(s.master, TagADM, req); err != nil {
				return err
			}
			if err := s.participateRedist(true); err != nil {
				return err
			}
			if s.withdrawing {
				return nil
			}
			s.fire("redistributed")
			continue
		}
		if src, tag, cr, ok, _ := s.vp.NRecv(core.AnyTID, TagADM); ok {
			_ = src
			_ = tag
			op, _ := cr.UpkString()
			if op == "enter-redist" {
				s.fire("enter-redist")
				if err := s.participateRedist(false); err != nil {
					return err
				}
				s.fire("redistributed")
			}
		}
	}
}

func (s *admSlave) localIndexOf(id int) int {
	if s.local == nil {
		return -1
	}
	for j := 0; j < s.local.Len(); j++ {
		if s.local.ID(j) == id {
			return j
		}
	}
	return -1
}

// participateRedist runs one redistribution round from a slave's
// perspective. If requested is true, this slave initiated the round (it
// already sent redist-request and must still consume the master's
// enter-redist message).
func (s *admSlave) participateRedist(requested bool) error {
	p := s.ap.Params
	if requested {
		// Consume the master's broadcast enter-redist.
		for {
			_, _, r, err := s.vp.Recv(s.master, TagADM)
			if err != nil {
				return err
			}
			op, _ := r.UpkString()
			if op == "enter-redist" {
				break
			}
		}
	}
	// Repartition bookkeeping cost.
	if err := s.vp.Compute(s.ap.RedistFixedFlops); err != nil {
		return err
	}
	// Report state; a withdrawing slave attaches its partial gradient.
	host := s.vp.Host()
	power := host.Spec().Speed / float64(1+host.LoadAverage())
	st := core.NewBuffer().PkString("state").PkInt(s.rank).PkInt(s.shard.Len()).
		PkFloat64s([]float64{power}).PkInt(boolToInt(s.withdrawing))
	if s.withdrawing {
		if p.Real && s.grad != nil {
			packGradient(st, s.partialLoss, s.grad)
		} else {
			done := 0
			if s.tracker != nil {
				done = s.tracker.Done()
			}
			st.PkFloat64s([]float64{0}).PkInt(done).PkVirtual(s.cost.NetBytes())
		}
	}
	if err := s.vp.Send(s.master, TagADM, st); err != nil {
		return err
	}
	// Receive the plan.
	var moves []adm.Move
	var expectIncoming int
	for {
		_, _, r, err := s.vp.Recv(s.master, TagADM)
		if err != nil {
			return err
		}
		op, _ := r.UpkString()
		if op != "plan" {
			continue
		}
		nMoves, _ := r.UpkInt()
		for i := 0; i < nMoves; i++ {
			from, _ := r.UpkInt()
			to, _ := r.UpkInt()
			cnt, _ := r.UpkInt()
			moves = append(moves, adm.Move{From: from, To: to, Count: cnt})
		}
		for i := 0; i < len(s.peers); i++ {
			inc, _ := r.UpkInt()
			if i == s.rank {
				expectIncoming = inc
			}
		}
		break
	}
	// Execute my outgoing moves: fragment and ship (flags travel with the
	// data so receivers do not reprocess). Shipping cuts the shard's tail;
	// keep the iteration cursor inside the shard.
	s.shard.SyncFlags(s.tracker)
	for _, m := range moves {
		if m.From != s.rank {
			continue
		}
		frag := s.shard.TakeFragment(m.Count)
		bytes := m.Count * ExemplarBytes(p.InputDim)
		buf := core.NewBuffer().PkString("frag").PkInt(m.Count).PkVirtual(bytes)
		ids := make([]float64, frag.Len())
		flags := make([]byte, frag.Len())
		for i := range frag.IDs {
			ids[i] = float64(frag.IDs[i])
			if frag.ProcessedFlags[i] {
				flags[i] = 1
			}
		}
		buf.PkFloat64s(ids).PkBytes(flags)
		var shipped *ExemplarSet
		if p.Real {
			shipped = s.takeLocalByIDs(frag.IDs)
			buf.PkFloat64s(shipped.features)
			labels := make([]float64, shipped.Len())
			for i, l := range shipped.labels {
				labels[i] = float64(l)
			}
			buf.PkFloat64s(labels)
		}
		if err := s.vp.Send(s.peers[m.To], TagADM, buf); err != nil {
			return err
		}
	}
	if s.cursor > s.shard.Len() {
		s.cursor = s.shard.Len()
	}
	// Absorb incoming fragments.
	received := 0
	for received < expectIncoming {
		_, _, r, err := s.vp.Recv(core.AnyTID, TagADM)
		if err != nil {
			return err
		}
		op, _ := r.UpkString()
		if op != "frag" {
			continue
		}
		cnt, _ := r.UpkInt()
		bytes, _ := r.UpkVirtual()
		ids, _ := r.UpkFloat64s()
		flags, _ := r.UpkBytes()
		frag := &adm.Shard{}
		for i := range ids {
			frag.IDs = append(frag.IDs, int(ids[i]))
			frag.ProcessedFlags = append(frag.ProcessedFlags, flags[i] == 1)
		}
		s.shard.Absorb(frag)
		frag.SeedTracker(s.tracker)
		if p.Real {
			feats, _ := r.UpkFloat64s()
			flabels, err := r.UpkFloat64s()
			if err != nil {
				return err
			}
			labels := make([]int, len(flabels))
			for i, f := range flabels {
				labels[i] = int(f)
			}
			intIDs := make([]int, len(ids))
			for i := range ids {
				intIDs[i] = int(ids[i])
			}
			s.local.Absorb(&ExemplarSet{Dim: p.InputDim, Classes: p.Classes,
				features: feats, labels: labels, ids: intIDs})
		}
		// Integration cost: merging the data and flag arrays.
		if err := s.vp.Compute(float64(bytes) * s.ap.MergeFlopsPerByte); err != nil {
			return err
		}
		received += cnt
	}
	if err := s.vp.Send(s.master, TagADM, core.NewBuffer().PkString("redist-done")); err != nil {
		return err
	}
	// Await the master's all-clear; this bounds the ADM migration measure.
	for {
		_, _, r, err := s.vp.Recv(s.master, TagADM)
		if err != nil {
			return err
		}
		op, _ := r.UpkString()
		if op == "redist-complete" {
			break
		}
	}
	if s.withdrawing {
		s.fire("withdrawn")
		now := s.vp.Proc().Now()
		s.ap.Stats.Records = append(s.ap.Stats.Records, core.MigrationRecord{
			VP:           s.vp.Mytid(),
			NewTID:       s.vp.Mytid(),
			From:         int(s.vp.Host().ID()),
			To:           -1, // data fragmented across the other slaves
			Reason:       core.ReasonOwnerReclaim,
			Start:        sim.Time(s.withdrawAt),
			OffSource:    now,
			Reintegrated: now,
			StateBytes:   0,
		})
	}
	return nil
}

func (s *admSlave) takeLocalByIDs(ids []int) *ExemplarSet {
	out := &ExemplarSet{Dim: s.local.Dim, Classes: s.local.Classes}
	keep := &ExemplarSet{Dim: s.local.Dim, Classes: s.local.Classes}
	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	for j := 0; j < s.local.Len(); j++ {
		row, label := s.local.Exemplar(j)
		dst := keep
		if want[s.local.ID(j)] {
			dst = out
		}
		dst.features = append(dst.features, row...)
		dst.labels = append(dst.labels, label)
		dst.ids = append(dst.ids, s.local.ID(j))
	}
	s.local = keep
	return out
}

// waitDone parks an inactive (withdrawn) slave until the master finishes.
func (s *admSlave) waitDone() error {
	for {
		_, tag, _, err := s.vp.Recv(core.AnyTID, core.AnyTag)
		if err != nil {
			return err
		}
		if tag == TagDone {
			s.fire("done")
			return nil
		}
	}
}

// fire takes an FSM transition, panicking on an undeclared one: a wrong
// transition is a protocol bug, the exact class of error the paper warns
// requires "great care" to avoid.
func (s *admSlave) fire(event string) {
	if _, err := s.fsm.Fire(event); err != nil {
		panic(err)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Package opt implements the paper's evaluation application: "Opt", a
// neural-network speech classifier trained by back-propagation and
// conjugate-gradient descent (§4.0, citing Barnard & Cole's conjugate-
// gradient optimization work).
//
// The package contains the *real* algorithm — a two-layer perceptron,
// full-batch back-propagation gradients, and Polak-Ribière conjugate
// gradient with a backtracking line search — plus a calibrated
// floating-point cost model, so that:
//
//   - correctness tests and cmd/opttrain run the actual numerics on
//     synthetic speech-like exemplars (the paper's proprietary training
//     sets are replaced by deterministic Gaussian class clusters with the
//     same vector layout: float features + a category scalar), and
//   - the simulation benchmarks charge the same computation as virtual
//     FLOPs against the simulated PA-RISC CPUs, moving the training data
//     as size-accounted messages.
//
// Parallel Opt (one master VP + N slave VPs) is written once against
// core.VP, so identical application code runs under plain PVM, MPVM and
// UPVM — the paper's source-compatibility claim. ADMopt is the data-
// parallel, FSM-structured variant built on package adm.
package opt

import (
	"fmt"
	"math"

	"pvmigrate/internal/sim"
)

// Net is a two-layer perceptron: InputDim → Hidden (tanh) → Classes
// (softmax). The paper describes the net as "simply a (large) matrix of
// floating point numbers"; the gradient is a matrix of the same shape.
type Net struct {
	InputDim, Hidden, Classes int
	// W1 is Hidden×InputDim, B1 is Hidden, W2 is Classes×Hidden, B2 is
	// Classes; all stored flat.
	W1, B1, W2, B2 []float64
}

// NewNet builds a network with small deterministic random weights.
func NewNet(inputDim, hidden, classes int, seed uint64) *Net {
	rng := sim.NewRNG(seed)
	n := &Net{
		InputDim: inputDim, Hidden: hidden, Classes: classes,
		W1: make([]float64, hidden*inputDim),
		B1: make([]float64, hidden),
		W2: make([]float64, classes*hidden),
		B2: make([]float64, classes),
	}
	scale1 := 1 / math.Sqrt(float64(inputDim))
	for i := range n.W1 {
		n.W1[i] = (rng.Float64()*2 - 1) * scale1
	}
	scale2 := 1 / math.Sqrt(float64(hidden))
	for i := range n.W2 {
		n.W2[i] = (rng.Float64()*2 - 1) * scale2
	}
	return n
}

// NumParams returns the total parameter count.
func (n *Net) NumParams() int {
	return len(n.W1) + len(n.B1) + len(n.W2) + len(n.B2)
}

// Bytes returns the network's size in bytes as shipped between VPs
// (single-precision floats, as on the 1994 testbed).
func (n *Net) Bytes() int { return n.NumParams() * 4 }

// Clone deep-copies the network.
func (n *Net) Clone() *Net {
	c := *n
	c.W1 = append([]float64(nil), n.W1...)
	c.B1 = append([]float64(nil), n.B1...)
	c.W2 = append([]float64(nil), n.W2...)
	c.B2 = append([]float64(nil), n.B2...)
	return &c
}

// Flat returns all parameters as one vector (copy).
func (n *Net) Flat() []float64 {
	out := make([]float64, 0, n.NumParams())
	out = append(out, n.W1...)
	out = append(out, n.B1...)
	out = append(out, n.W2...)
	out = append(out, n.B2...)
	return out
}

// SetFlat installs parameters from a flat vector.
func (n *Net) SetFlat(v []float64) error {
	if len(v) != n.NumParams() {
		return fmt.Errorf("opt: flat vector has %d values, net has %d params", len(v), n.NumParams())
	}
	i := 0
	i += copy(n.W1, v[i:i+len(n.W1)])
	i += copy(n.B1, v[i:i+len(n.B1)])
	i += copy(n.W2, v[i:i+len(n.W2)])
	copy(n.B2, v[i:])
	return nil
}

// forward computes hidden activations and class probabilities for one
// exemplar, reusing the provided scratch slices.
func (n *Net) forward(x []float64, hid, out []float64) {
	for h := 0; h < n.Hidden; h++ {
		sum := n.B1[h]
		row := n.W1[h*n.InputDim : (h+1)*n.InputDim]
		for d, xv := range x {
			sum += row[d] * xv
		}
		hid[h] = math.Tanh(sum)
	}
	maxLogit := math.Inf(-1)
	for c := 0; c < n.Classes; c++ {
		sum := n.B2[c]
		row := n.W2[c*n.Hidden : (c+1)*n.Hidden]
		for h, hv := range hid {
			sum += row[h] * hv
		}
		out[c] = sum
		if sum > maxLogit {
			maxLogit = sum
		}
	}
	var z float64
	for c := range out {
		out[c] = math.Exp(out[c] - maxLogit)
		z += out[c]
	}
	for c := range out {
		out[c] /= z
	}
}

// Classify returns the most probable class for x.
func (n *Net) Classify(x []float64) int {
	hid := make([]float64, n.Hidden)
	out := make([]float64, n.Classes)
	n.forward(x, hid, out)
	best := 0
	for c := 1; c < n.Classes; c++ {
		if out[c] > out[best] {
			best = c
		}
	}
	return best
}

// Loss returns the mean cross-entropy of the net over the exemplars.
func (n *Net) Loss(set *ExemplarSet) float64 {
	hid := make([]float64, n.Hidden)
	out := make([]float64, n.Classes)
	var total float64
	for i := 0; i < set.Len(); i++ {
		x, label := set.Exemplar(i)
		n.forward(x, hid, out)
		p := out[label]
		if p < 1e-300 {
			p = 1e-300
		}
		total += -math.Log(p)
	}
	return total / float64(set.Len())
}

// Gradient is a parameter-shaped accumulator.
type Gradient struct {
	W1, B1, W2, B2 []float64
	Count          int // exemplars accumulated
}

// NewGradient returns a zero gradient shaped like n.
func NewGradient(n *Net) *Gradient {
	return &Gradient{
		W1: make([]float64, len(n.W1)),
		B1: make([]float64, len(n.B1)),
		W2: make([]float64, len(n.W2)),
		B2: make([]float64, len(n.B2)),
	}
}

// Add accumulates another gradient (fixed order keeps parallel reductions
// deterministic).
func (g *Gradient) Add(o *Gradient) {
	for i := range g.W1 {
		g.W1[i] += o.W1[i]
	}
	for i := range g.B1 {
		g.B1[i] += o.B1[i]
	}
	for i := range g.W2 {
		g.W2[i] += o.W2[i]
	}
	for i := range g.B2 {
		g.B2[i] += o.B2[i]
	}
	g.Count += o.Count
}

// Flat returns the gradient as one vector (mean over exemplars).
func (g *Gradient) Flat() []float64 {
	n := float64(g.Count)
	if n == 0 {
		n = 1
	}
	out := make([]float64, 0, len(g.W1)+len(g.B1)+len(g.W2)+len(g.B2))
	for _, s := range [][]float64{g.W1, g.B1, g.W2, g.B2} {
		for _, v := range s {
			out = append(out, v/n)
		}
	}
	return out
}

// Bytes returns the gradient's wire size (single precision).
func (g *Gradient) Bytes() int {
	return (len(g.W1) + len(g.B1) + len(g.W2) + len(g.B2)) * 4
}

// AccumulateGradient adds the back-propagation gradient of the cross-
// entropy loss over the set's exemplars [lo, hi) into g.
func (n *Net) AccumulateGradient(set *ExemplarSet, lo, hi int, g *Gradient) {
	hid := make([]float64, n.Hidden)
	out := make([]float64, n.Classes)
	dHid := make([]float64, n.Hidden)
	for i := lo; i < hi; i++ {
		x, label := set.Exemplar(i)
		n.forward(x, hid, out)
		// dL/dlogit_c = p_c - 1{c==label}
		for h := range dHid {
			dHid[h] = 0
		}
		for c := 0; c < n.Classes; c++ {
			delta := out[c]
			if c == label {
				delta -= 1
			}
			g.B2[c] += delta
			row := n.W2[c*n.Hidden : (c+1)*n.Hidden]
			grow := g.W2[c*n.Hidden : (c+1)*n.Hidden]
			for h, hv := range hid {
				grow[h] += delta * hv
				dHid[h] += delta * row[h]
			}
		}
		for h := 0; h < n.Hidden; h++ {
			dAct := dHid[h] * (1 - hid[h]*hid[h]) // tanh'
			g.B1[h] += dAct
			grow := g.W1[h*n.InputDim : (h+1)*n.InputDim]
			for d, xv := range x {
				grow[d] += dAct * xv
			}
		}
		g.Count++
	}
}

package opt

import (
	"math"
	"testing"
	"testing/quick"

	"pvmigrate/internal/sim"
)

func smallSet(t *testing.T) *ExemplarSet {
	t.Helper()
	return GenerateExemplars(240, 8, 4, 7)
}

func TestNetForwardProbabilities(t *testing.T) {
	n := NewNet(8, 6, 4, 1)
	hid := make([]float64, 6)
	out := make([]float64, 4)
	x := make([]float64, 8)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	n.forward(x, hid, out)
	var sum float64
	for _, p := range out {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", out)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %f", sum)
	}
}

func TestNetFlatRoundTrip(t *testing.T) {
	n := NewNet(5, 4, 3, 2)
	flat := n.Flat()
	if len(flat) != n.NumParams() {
		t.Fatalf("flat len = %d, params = %d", len(flat), n.NumParams())
	}
	c := NewNet(5, 4, 3, 99)
	if err := c.SetFlat(flat); err != nil {
		t.Fatal(err)
	}
	for i, v := range c.Flat() {
		if v != flat[i] {
			t.Fatal("flat round trip broke weights")
		}
	}
	if err := c.SetFlat(flat[:3]); err == nil {
		t.Fatal("short flat vector accepted")
	}
}

// Finite-difference check: the analytic backprop gradient matches numeric
// differentiation of the loss.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	set := GenerateExemplars(12, 4, 3, 3)
	n := NewNet(4, 5, 3, 4)
	g := NewGradient(n)
	n.AccumulateGradient(set, 0, set.Len(), g)
	grad := g.Flat()
	flat := n.Flat()
	const eps = 1e-6
	// Check a sample of coordinates.
	for _, idx := range []int{0, 3, len(flat) / 2, len(flat) - 1} {
		orig := flat[idx]
		flat[idx] = orig + eps
		n.SetFlat(flat)
		lossPlus := n.Loss(set)
		flat[idx] = orig - eps
		n.SetFlat(flat)
		lossMinus := n.Loss(set)
		flat[idx] = orig
		n.SetFlat(flat)
		numeric := (lossPlus - lossMinus) / (2 * eps)
		if math.Abs(numeric-grad[idx]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("coord %d: analytic %g vs numeric %g", idx, grad[idx], numeric)
		}
	}
}

func TestCGTrainingDecreasesLossMonotonically(t *testing.T) {
	set := smallSet(t)
	n := NewNet(set.Dim, 12, set.Classes, 5)
	tr := NewCGTrainer(n)
	final := tr.Train(set, 15, 0)
	if len(tr.Losses) == 0 {
		t.Fatal("no iterations recorded")
	}
	for i := 1; i < len(tr.Losses); i++ {
		if tr.Losses[i] > tr.Losses[i-1]+1e-12 {
			t.Fatalf("loss increased at iter %d: %v", i, tr.Losses)
		}
	}
	initial := math.Log(float64(set.Classes)) // ~random-guess loss
	if final > initial*0.8 {
		t.Fatalf("loss barely moved: %f (start ~%f)", final, initial)
	}
}

func TestCGTrainingReachesGoodAccuracy(t *testing.T) {
	set := smallSet(t)
	n := NewNet(set.Dim, 12, set.Classes, 5)
	tr := NewCGTrainer(n)
	tr.Train(set, 40, 0.05)
	if acc := tr.Accuracy(set); acc < 0.9 {
		t.Fatalf("accuracy = %.2f after training", acc)
	}
}

func TestGradientAdditivity(t *testing.T) {
	// The parallel decomposition: shard gradients sum to the full gradient.
	set := smallSet(t)
	n := NewNet(set.Dim, 10, set.Classes, 11)
	full := NewGradient(n)
	n.AccumulateGradient(set, 0, set.Len(), full)

	parts := NewGradient(n)
	shards := set.SplitEven(3)
	lo := 0
	for _, sh := range shards {
		g := NewGradient(n)
		n.AccumulateGradient(set, lo, lo+sh.Len(), g)
		parts.Add(g)
		lo += sh.Len()
	}
	fullFlat, partFlat := full.Flat(), parts.Flat()
	for i := range fullFlat {
		if math.Abs(fullFlat[i]-partFlat[i]) > 1e-12*(1+math.Abs(fullFlat[i])) {
			t.Fatalf("coord %d: %g vs %g", i, fullFlat[i], partFlat[i])
		}
	}
	if full.Count != parts.Count {
		t.Fatalf("counts: %d vs %d", full.Count, parts.Count)
	}
}

func TestExemplarSetShapes(t *testing.T) {
	set := GenerateExemplars(100, 16, 5, 1)
	if set.Len() != 100 || set.Bytes() != 100*ExemplarBytes(16) {
		t.Fatalf("len=%d bytes=%d", set.Len(), set.Bytes())
	}
	x, label := set.Exemplar(7)
	if len(x) != 16 || label != 7%5 {
		t.Fatalf("exemplar 7: dim=%d label=%d", len(x), label)
	}
	if set.ID(7) != 7 {
		t.Fatalf("id = %d", set.ID(7))
	}
}

func TestSizedSetApproximatesBytes(t *testing.T) {
	set := SizedSet(600_000, 64, 16, 1)
	got := set.Bytes()
	if got < 590_000 || got > 600_000 {
		t.Fatalf("sized set = %d bytes", got)
	}
}

func TestSplitEvenCoversAll(t *testing.T) {
	set := GenerateExemplars(103, 4, 3, 1)
	shards := set.SplitEven(4)
	total := 0
	for _, sh := range shards {
		total += sh.Len()
	}
	if total != 103 {
		t.Fatalf("split covers %d of 103", total)
	}
}

func TestTakeTailAndAbsorb(t *testing.T) {
	set := GenerateExemplars(50, 4, 2, 1).Own()
	frag := set.TakeTail(20)
	if set.Len() != 30 || frag.Len() != 20 {
		t.Fatalf("lens: %d, %d", set.Len(), frag.Len())
	}
	other := GenerateExemplars(10, 4, 2, 2).Own()
	if err := other.Absorb(frag); err != nil {
		t.Fatal(err)
	}
	if other.Len() != 30 {
		t.Fatalf("absorbed len = %d", other.Len())
	}
	bad := GenerateExemplars(5, 8, 2, 3)
	if err := other.Absorb(bad); err == nil {
		t.Fatal("dim mismatch absorbed")
	}
}

func TestPropDataMovementConservesExemplars(t *testing.T) {
	f := func(takes []uint8) bool {
		a := GenerateExemplars(60, 4, 3, 9).Own()
		b := GenerateExemplars(0, 4, 3, 10).Own()
		b.Dim = 4
		for _, tk := range takes {
			n := int(tk) % 20
			if tk%2 == 0 {
				b.Absorb(a.TakeTail(n))
			} else {
				a.Absorb(b.TakeTail(n))
			}
		}
		seen := make(map[int]bool)
		for _, s := range []*ExemplarSet{a, b} {
			for i := 0; i < s.Len(); i++ {
				id := s.ID(i)
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return len(seen) == 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelScaling(t *testing.T) {
	c := CostModel{InputDim: 64, Hidden: 32, Classes: 16}
	per := c.GradientFlopsPerExemplar()
	if per != 6*(64*32+32*16) {
		t.Fatalf("per-exemplar flops = %f", per)
	}
	if c.GradientFlops(100) != 100*per {
		t.Fatal("linear scaling broken")
	}
	adm := CostModel{InputDim: 64, Hidden: 32, Classes: 16, OverheadFactor: 1.23}
	if r := adm.GradientFlopsPerExemplar() / per; math.Abs(r-1.23) > 1e-9 {
		t.Fatalf("overhead factor ratio = %f", r)
	}
	if c.NetBytes() != (64*32+32+32*16+16)*4 {
		t.Fatalf("net bytes = %d", c.NetBytes())
	}
	if c.LossFlopsPerExemplar() >= per {
		t.Fatal("forward pass should cost less than forward+backward")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.InputDim != 64 || p.Iterations == 0 || p.Overhead != 1.0 {
		t.Fatalf("defaults = %+v", p)
	}
	if p.NumExemplars() != 600_000/ExemplarBytes(64) {
		t.Fatalf("exemplars = %d", p.NumExemplars())
	}
}

func TestEvenCounts(t *testing.T) {
	c := evenCounts(10, 3)
	if c[0] != 4 || c[1] != 3 || c[2] != 3 {
		t.Fatalf("counts = %v", c)
	}
}

func TestRNGClassifierSanity(t *testing.T) {
	// Different seeds give different data.
	a := GenerateExemplars(10, 4, 2, 1)
	b := GenerateExemplars(10, 4, 2, 2)
	xa, _ := a.Exemplar(0)
	xb, _ := b.Exemplar(0)
	same := true
	for i := range xa {
		if xa[i] != xb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds ignored")
	}
	_ = sim.FromSeconds // keep the import honest if unused elsewhere
}

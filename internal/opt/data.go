package opt

import (
	"fmt"

	"pvmigrate/internal/sim"
)

// ExemplarSet is a training set: vectors of floating-point features
// ("digitized speech sound") each tagged with a category scalar, exactly
// the layout the paper describes. Sets are generated synthetically as
// Gaussian class clusters — a substitution for the paper's proprietary
// 500 KB–400 MB speech corpora that preserves the property Opt's cost
// depends on: exemplar count × dimensionality.
type ExemplarSet struct {
	Dim     int
	Classes int
	// features holds Len()×Dim values flat; labels holds Len() categories.
	features []float64
	labels   []int
	// ids are stable global exemplar identities (ADM redistribution
	// tracking); id i starts as exemplar i.
	ids []int
}

// ExemplarBytes returns the wire/storage size of one exemplar: Dim
// single-precision features plus the category scalar.
func ExemplarBytes(dim int) int { return (dim + 1) * 4 }

// GenerateExemplars builds a deterministic synthetic set: classes are
// Gaussian clusters with unit-ish separation, which a small MLP can learn —
// enough structure for convergence tests.
func GenerateExemplars(n, dim, classes int, seed uint64) *ExemplarSet {
	rng := sim.NewRNG(seed)
	set := &ExemplarSet{
		Dim:      dim,
		Classes:  classes,
		features: make([]float64, n*dim),
		labels:   make([]int, n),
		ids:      make([]int, n),
	}
	// Class centers.
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = rng.NormFloat64() * 2
		}
	}
	for i := 0; i < n; i++ {
		c := i % classes
		set.labels[i] = c
		set.ids[i] = i
		row := set.features[i*dim : (i+1)*dim]
		for d := range row {
			row[d] = centers[c][d] + rng.NormFloat64()*0.6
		}
	}
	return set
}

// SizedSet builds a set whose total storage is approximately totalBytes,
// matching how the paper reports training sets by megabyte.
func SizedSet(totalBytes, dim, classes int, seed uint64) *ExemplarSet {
	n := totalBytes / ExemplarBytes(dim)
	if n < classes {
		n = classes
	}
	return GenerateExemplars(n, dim, classes, seed)
}

// NewExemplarSet wraps pre-existing flat storage as a set — the receiving
// side of a shard transfer that crossed a package boundary (internal/ft
// unpacks wire buffers into sets with this).
func NewExemplarSet(dim, classes int, features []float64, labels []int) *ExemplarSet {
	return &ExemplarSet{
		Dim: dim, Classes: classes,
		features: features,
		labels:   labels,
		ids:      make([]int, len(labels)),
	}
}

// Features returns the flat Len()×Dim feature storage (shared, not copied).
func (s *ExemplarSet) Features() []float64 { return s.features }

// Labels returns the category labels (shared, not copied).
func (s *ExemplarSet) Labels() []int { return s.labels }

// Len returns the number of exemplars.
func (s *ExemplarSet) Len() int { return len(s.labels) }

// Bytes returns the set's total size.
func (s *ExemplarSet) Bytes() int { return s.Len() * ExemplarBytes(s.Dim) }

// Exemplar returns the features and label of exemplar i.
func (s *ExemplarSet) Exemplar(i int) ([]float64, int) {
	return s.features[i*s.Dim : (i+1)*s.Dim], s.labels[i]
}

// ID returns the stable global id of exemplar i.
func (s *ExemplarSet) ID(i int) int { return s.ids[i] }

// Slice returns a view [lo, hi) as a new set sharing storage.
func (s *ExemplarSet) Slice(lo, hi int) *ExemplarSet {
	return &ExemplarSet{
		Dim: s.Dim, Classes: s.Classes,
		features: s.features[lo*s.Dim : hi*s.Dim],
		labels:   s.labels[lo:hi],
		ids:      s.ids[lo:hi],
	}
}

// SplitEven partitions the set into n contiguous shards of near-equal size
// ("data is equally distributed among the slaves").
func (s *ExemplarSet) SplitEven(n int) []*ExemplarSet {
	shards := make([]*ExemplarSet, n)
	per := s.Len() / n
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + per
		if i == n-1 {
			hi = s.Len()
		}
		shards[i] = s.Slice(lo, hi)
		lo = hi
	}
	return shards
}

// TakeTail removes the last n exemplars and returns them as a new,
// independently owned set (ADM fragments vacate from the tail; ordering
// need not be preserved, per §4.3).
func (s *ExemplarSet) TakeTail(n int) *ExemplarSet {
	if n > s.Len() {
		n = s.Len()
	}
	cut := s.Len() - n
	frag := &ExemplarSet{
		Dim: s.Dim, Classes: s.Classes,
		features: append([]float64(nil), s.features[cut*s.Dim:]...),
		labels:   append([]int(nil), s.labels[cut:]...),
		ids:      append([]int(nil), s.ids[cut:]...),
	}
	s.features = s.features[:cut*s.Dim]
	s.labels = s.labels[:cut]
	s.ids = s.ids[:cut]
	return frag
}

// Absorb appends another set's exemplars (must match shape).
func (s *ExemplarSet) Absorb(o *ExemplarSet) error {
	if o.Dim != s.Dim {
		return fmt.Errorf("opt: absorbing dim %d into dim %d", o.Dim, s.Dim)
	}
	s.features = append(s.features, o.features...)
	s.labels = append(s.labels, o.labels...)
	s.ids = append(s.ids, o.ids...)
	return nil
}

// Own converts a view into an independently owned copy (so ADM slaves can
// absorb and shed exemplars without aliasing the master's storage).
func (s *ExemplarSet) Own() *ExemplarSet {
	return &ExemplarSet{
		Dim: s.Dim, Classes: s.Classes,
		features: append([]float64(nil), s.features...),
		labels:   append([]int(nil), s.labels...),
		ids:      append([]int(nil), s.ids...),
	}
}

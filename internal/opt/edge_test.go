package opt

import (
	"math"
	"testing"
)

func TestGradientBytes(t *testing.T) {
	n := NewNet(8, 4, 3, 1)
	g := NewGradient(n)
	if g.Bytes() != n.NumParams()*4 {
		t.Fatalf("gradient bytes = %d, params*4 = %d", g.Bytes(), n.NumParams()*4)
	}
}

func TestNetClone(t *testing.T) {
	n := NewNet(4, 3, 2, 7)
	c := n.Clone()
	c.W1[0] += 1
	if n.W1[0] == c.W1[0] {
		t.Fatal("clone shares storage")
	}
}

func TestClassifyAfterTraining(t *testing.T) {
	set := GenerateExemplars(200, 6, 3, 2)
	n := NewNet(6, 10, 3, 3)
	tr := NewCGTrainer(n)
	tr.Train(set, 30, 0.05)
	x, label := set.Exemplar(0)
	if got := n.Classify(x); got != label {
		// Not every exemplar classifies correctly; check the aggregate.
		if tr.Accuracy(set) < 0.85 {
			t.Fatalf("accuracy = %.2f", tr.Accuracy(set))
		}
	}
}

func TestLineSearchAcceptsDescentStep(t *testing.T) {
	set := GenerateExemplars(100, 4, 2, 5)
	n := NewNet(4, 6, 2, 6)
	tr := NewCGTrainer(n)
	g := NewGradient(n)
	n.AccumulateGradient(set, 0, set.Len(), g)
	grad := g.Flat()
	dir := tr.Direction(grad)
	loss0 := n.Loss(set)
	step, loss := tr.LineSearch(set, grad, dir)
	if step <= 0 {
		t.Fatalf("no step accepted")
	}
	if loss > loss0 {
		t.Fatalf("line search increased loss: %f → %f", loss0, loss)
	}
}

func TestSizedSetMinimumClasses(t *testing.T) {
	// Tiny byte budgets still produce at least one exemplar per class.
	set := SizedSet(10, 64, 16, 1)
	if set.Len() < 16 {
		t.Fatalf("len = %d", set.Len())
	}
}

func TestTakeTailMoreThanLen(t *testing.T) {
	set := GenerateExemplars(5, 4, 2, 1).Own()
	frag := set.TakeTail(99)
	if frag.Len() != 5 || set.Len() != 0 {
		t.Fatalf("lens: %d, %d", frag.Len(), set.Len())
	}
}

func TestReferenceTrajectoryMatchesSerialTrainerShape(t *testing.T) {
	// Sanity: the reference decreases loss overall for a learnable set.
	p := Params{TotalBytes: 100_000, Iterations: 8, Real: true, Seed: 12}
	losses := ReferenceTrajectory(p, 2)
	if len(losses) != 8 {
		t.Fatalf("losses = %v", losses)
	}
	if losses[7] >= losses[0] {
		t.Fatalf("no learning: %v", losses)
	}
	// Deterministic.
	again := ReferenceTrajectory(p, 2)
	for i := range losses {
		if losses[i] != again[i] {
			t.Fatal("reference not deterministic")
		}
	}
}

func TestReferenceLineSearchMonotone(t *testing.T) {
	p := Params{TotalBytes: 100_000, Iterations: 8, Real: true, Seed: 12, LineSearch: true}
	losses := ReferenceTrajectory(p, 3)
	for i := 1; i < len(losses); i++ {
		if losses[i] > losses[i-1]+1e-12 {
			t.Fatalf("loss increased at %d: %v", i, losses)
		}
	}
}

func TestUpdateFlopsScalesWithSlaves(t *testing.T) {
	c := CostModel{InputDim: 8, Hidden: 4, Classes: 2}
	if c.UpdateFlops(4) <= c.UpdateFlops(1) {
		t.Fatal("update cost should grow with slave count")
	}
}

func TestADMParamsDefaults(t *testing.T) {
	ap := ADMParams{Params: Params{}}.withDefaults()
	if math.Abs(ap.Overhead-1.23) > 1e-9 {
		t.Fatalf("ADM overhead default = %f", ap.Overhead)
	}
	if ap.ChunkExemplars == 0 || ap.MergeFlopsPerByte == 0 || ap.Stats == nil {
		t.Fatalf("defaults incomplete: %+v", ap)
	}
	// Explicit overhead is respected.
	ap2 := ADMParams{Params: Params{Overhead: 2.0}}.withDefaults()
	if ap2.Overhead != 2.0 {
		t.Fatalf("explicit overhead overridden: %f", ap2.Overhead)
	}
	// LineSearch is not supported by the ADM protocol.
	ap3 := ADMParams{Params: Params{LineSearch: true}}.withDefaults()
	if ap3.LineSearch {
		t.Fatal("ADM accepted LineSearch")
	}
}

func TestADMFSMHasFigure4States(t *testing.T) {
	f := admFSM()
	states := f.States()
	want := map[string]bool{"compute": false, "reduce": false, "redistribute": false,
		"inactive": false, "finished": false}
	for _, s := range states {
		if _, ok := want[string(s)]; ok {
			want[string(s)] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("FSM missing state %q: %v", name, states)
		}
	}
}

package opt

// CostModel converts Opt's work into virtual FLOPs for the simulated CPUs.
// The constants follow from the algorithm's structure; the per-exemplar
// figure is what calibrates Table 1's 198-second quiet-case run.
type CostModel struct {
	InputDim, Hidden, Classes int
	// OverheadFactor multiplies the per-exemplar cost; 1.0 for PVM_opt.
	// ADMopt uses ~1.23: the paper measured ADMopt 23% slower in the quiet
	// case and attributed it to the FSM switch statement, the per-loop
	// event-flag checks, and the processed-exemplar array (§4.3.1) —
	// effects a discrete-event simulation cannot derive, so the measured
	// factor is applied directly.
	OverheadFactor float64
}

// GradientFlopsPerExemplar returns the forward+backward cost of one
// exemplar: ~2 multiply-adds per weight forward, ~4 backward.
func (c CostModel) GradientFlopsPerExemplar() float64 {
	weights := float64(c.InputDim*c.Hidden + c.Hidden*c.Classes)
	f := 6 * weights
	if c.OverheadFactor > 0 {
		f *= c.OverheadFactor
	}
	return f
}

// GradientFlops returns the cost of a gradient over n exemplars.
func (c CostModel) GradientFlops(n int) float64 {
	return float64(n) * c.GradientFlopsPerExemplar()
}

// LossFlopsPerExemplar returns the forward-only cost (line search probes).
func (c CostModel) LossFlopsPerExemplar() float64 {
	weights := float64(c.InputDim*c.Hidden + c.Hidden*c.Classes)
	f := 2 * weights
	if c.OverheadFactor > 0 {
		f *= c.OverheadFactor
	}
	return f
}

// UpdateFlops returns the master's per-iteration cost: combining partial
// gradients, the CG direction update, and applying the step.
func (c CostModel) UpdateFlops(nSlaves int) float64 {
	params := float64(c.InputDim*c.Hidden + c.Hidden + c.Hidden*c.Classes + c.Classes)
	return params * float64(4+2*nSlaves)
}

// NetBytes returns the network's wire size (single precision).
func (c CostModel) NetBytes() int {
	return (c.InputDim*c.Hidden + c.Hidden + c.Hidden*c.Classes + c.Classes) * 4
}

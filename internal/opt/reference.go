package opt

// ReferenceTrajectory computes — entirely serially — the exact per-iteration
// mean losses that the distributed master produces in Real mode with the
// given slave count: the same synthetic data, the same initial weights, the
// same shard decomposition, the same shard-ordered gradient reduction, and
// the same adaptive-step CG update. Tests compare the distributed runs
// (under PVM, MPVM, UPVM or ADM, with or without migrations) against this
// trajectory bitwise: any divergence means the message-passing or migration
// machinery corrupted the computation.
func ReferenceTrajectory(p Params, nSlaves int) []float64 {
	p = p.withDefaults()
	nEx := p.NumExemplars()
	set := GenerateExemplars(nEx, p.InputDim, p.Classes, p.Seed)
	net := NewNet(p.InputDim, p.Hidden, p.Classes, p.Seed+1)
	trainer := NewCGTrainer(net)

	counts := evenCounts(nEx, nSlaves)
	shards := make([]refRange, nSlaves)
	lo := 0
	for i, n := range counts {
		shards[i] = refRange{lo: lo, hi: lo + n}
		lo += n
	}

	var losses []float64
	step := p.Step
	prevLoss := 0.0
	for iter := 0; iter < p.Iterations; iter++ {
		total := NewGradient(net)
		var lossSum float64
		for _, sh := range shards {
			g := NewGradient(net)
			net.AccumulateGradient(set, sh.lo, sh.hi, g)
			local := set.Slice(sh.lo, sh.hi)
			lossSum += net.Loss(local) * float64(local.Len())
			total.Add(g)
		}
		meanLoss := lossSum / float64(nEx)
		losses = append(losses, meanLoss)
		grad := total.Flat()
		dir := trainer.Direction(grad)
		if p.LineSearch {
			referenceLineSearch(net, set, shards, grad, dir, lossSum, nEx)
		} else {
			if iter > 0 && meanLoss > prevLoss {
				step *= 0.5
			}
			prevLoss = meanLoss
			flat := net.Flat()
			for i := range flat {
				flat[i] += step * dir[i]
			}
			net.SetFlat(flat)
		}
	}
	return losses
}

type refRange struct{ lo, hi int }

// referenceLineSearch mirrors distributedLineSearch exactly: the trial loss
// is accumulated shard by shard (in shard order) so the floating-point
// result matches the wire version bit for bit.
func referenceLineSearch(net *Net, set *ExemplarSet,
	shards []refRange, grad, dir []float64, lossSum0 float64, nEx int) {

	var slope float64
	for i := range grad {
		slope += grad[i] * dir[i]
	}
	if slope >= 0 {
		return
	}
	const c1 = 1e-4
	loss0 := lossSum0 / float64(nEx)
	base := net.Flat()
	step := 1.0
	probeNet := &Net{InputDim: net.InputDim, Hidden: net.Hidden, Classes: net.Classes,
		W1: make([]float64, len(net.W1)), B1: make([]float64, len(net.B1)),
		W2: make([]float64, len(net.W2)), B2: make([]float64, len(net.B2))}
	for try := 0; try < 12; try++ {
		trialFlat := make([]float64, len(base))
		for i := range base {
			trialFlat[i] = base[i] + step*dir[i]
		}
		probeNet.SetFlat(trialFlat)
		var trialSum float64
		for _, sh := range shards {
			local := set.Slice(sh.lo, sh.hi)
			trialSum += probeNet.Loss(local) * float64(local.Len())
		}
		trial := trialSum / float64(nEx)
		if trial <= loss0+c1*step*slope {
			net.SetFlat(trialFlat)
			return
		}
		step *= 0.5
	}
	net.SetFlat(base)
}

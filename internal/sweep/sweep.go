// Package sweep fans independent deterministic simulation runs out across
// host CPUs.
//
// Everything built on internal/sim is single-threaded by construction — the
// kernel dispatches one proc at a time, and the pvmlint rawgoroutine
// analyzer forbids host concurrency everywhere above the kernel. That rule
// is exactly what makes *runs* embarrassingly parallel: a seeded experiment
// touches no state outside its own kernel, so a sweep of N seeds can run on
// N host threads with bit-for-bit the same per-seed results as a serial
// loop. This package is the one sanctioned place (besides the kernel's
// coroutine trampoline) where host goroutines exist; it is allowlisted in
// internal/lint.Config.ConcurrencyAllow, and the determinism contract is
// pinned by chaos's parallel-vs-serial sweep test.
//
// The contract for worker functions: build every kernel, RNG and system
// inside fn, reference nothing mutable from outside, and return a plain
// value. Results are delivered indexed by input, so output order never
// depends on host scheduling.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(i) for every i in [0, n) across at most workers host
// goroutines and returns the results indexed by i. workers <= 0 means
// GOMAXPROCS; workers == 1 runs inline with no goroutines at all, so a
// serial sweep is byte-identical to the pre-parallel code path. fn must be
// safe to call concurrently with distinct arguments (self-contained runs).
// A panic in any fn is re-raised on the caller after the sweep drains.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}

	var (
		next     atomic.Int64 // next unclaimed index
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("sweep: worker panicked: %v", panicked))
	}
	return out
}

// Seeds runs fn for every seed in [0, n) — the shape of a chaos or
// benchmark seed sweep. See Map for the workers contract.
func Seeds[T any](n, workers int, fn func(seed uint64) T) []T {
	return Map(n, workers, func(i int) T { return fn(uint64(i)) })
}

// Workers clamps an explicit worker-count request: 0 (or negative) means
// GOMAXPROCS. It exists so flag plumbing in the chaos harness and the
// bench drivers resolves "-parallel 0" the same way everywhere.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

package sweep_test

import (
	"strings"
	"testing"
	"time"

	"pvmigrate/internal/sim"
	"pvmigrate/internal/sweep"
)

// kernelFingerprint runs a small seeded simulation — a few procs racing on
// a queue under a seeded tie-breaker — and condenses the schedule into a
// comparable value. Distinct seeds give distinct schedules, and the same
// seed must give the same schedule no matter which host thread runs it.
func kernelFingerprint(seed uint64) uint64 {
	k := sim.NewKernel()
	k.SetTieBreakSeed(seed)
	rng := sim.NewRNG(seed)
	q := sim.NewQueue[int](k, 4)
	var fp uint64
	for i := 0; i < 4; i++ {
		i := i
		jitter := sim.Time(rng.Intn(100)) * time.Microsecond
		k.Spawn("prod", func(p *sim.Proc) {
			for j := 0; j < 8; j++ {
				p.Sleep(jitter)
				q.Put(p, i*8+j)
			}
		})
	}
	k.Spawn("cons", func(p *sim.Proc) {
		for n := 0; n < 32; n++ {
			v, err := q.Get(p)
			if err != nil {
				return
			}
			fp = fp*1099511628211 + uint64(v)
		}
	})
	k.Run()
	return fp ^ uint64(k.Now())
}

func TestMapOrderAndCoverage(t *testing.T) {
	got := sweep.Map(100, 7, func(i int) int { return i * i })
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if out := sweep.Map(0, 4, func(i int) int { return i }); out != nil {
		t.Fatalf("n=0 returned %v", out)
	}
	if out := sweep.Map(1, 8, func(i int) int { return 41 + i }); len(out) != 1 || out[0] != 41 {
		t.Fatalf("n=1 returned %v", out)
	}
}

// TestParallelMatchesSerial is the package's core contract: fanning seeded
// kernel runs across workers yields bit-identical per-seed results to the
// inline serial loop.
func TestParallelMatchesSerial(t *testing.T) {
	const n = 48
	serial := sweep.Seeds(n, 1, kernelFingerprint)
	for _, workers := range []int{2, 4, 8} {
		par := sweep.Seeds(n, workers, kernelFingerprint)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d seed %d: fingerprint %x != serial %x",
					workers, i, par[i], serial[i])
			}
		}
	}
	// Sanity: the workload actually distinguishes seeds, or the comparison
	// above is vacuous.
	distinct := map[uint64]bool{}
	for _, fp := range serial {
		distinct[fp] = true
	}
	if len(distinct) < n/2 {
		t.Fatalf("only %d distinct fingerprints across %d seeds", len(distinct), n)
	}
}

func TestWorkerPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		if !strings.Contains(r.(string), "boom-17") {
			t.Fatalf("panic value lost: %v", r)
		}
	}()
	sweep.Map(32, 4, func(i int) int {
		if i == 17 {
			panic("boom-17")
		}
		return i
	})
}

func TestWorkersClamp(t *testing.T) {
	if sweep.Workers(3) != 3 {
		t.Fatal("explicit worker count not honoured")
	}
	if sweep.Workers(0) < 1 || sweep.Workers(-2) < 1 {
		t.Fatal("defaulted worker count must be positive")
	}
}

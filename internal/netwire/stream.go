package netwire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"pvmigrate/internal/netsim"
)

// Stream frame header: seq u64 | length u32.
const streamHeaderLen = 12

// maxFrame bounds a single stream frame's encoded payload; anything larger
// indicates a desynchronized reader, not a legitimate message.
const maxFrame = 64 << 20

// Listen implements netsim.Wire: open a real TCP listener standing in for
// the simulated (host, port) and start accepting. The listener binds an
// ephemeral loopback port; Dial looks up the mapping, so simulated port
// numbers never collide with real ones.
func (b *Backend) Listen(h netsim.HostID, port int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrShutdown
	}
	hp := hostPort{host: h, port: port}
	if _, ok := b.listeners[hp]; ok {
		return fmt.Errorf("netwire: host %d port %d already listening", h, port)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("netwire: listen host %d port %d: %w", h, port, err)
	}
	b.listeners[hp] = &wireListener{ln: ln}
	go b.acceptLoop(ln)
	return nil
}

// CloseListen implements netsim.Wire: tear down the real listener for the
// simulated (host, port). Established streams are unaffected.
func (b *Backend) CloseListen(h netsim.HostID, port int) {
	b.mu.Lock()
	wl, ok := b.listeners[hostPort{host: h, port: port}]
	if ok {
		delete(b.listeners, hostPort{host: h, port: port})
	}
	b.mu.Unlock()
	if ok {
		wl.ln.Close() // acceptLoop exits on the close error
	}
}

// acceptLoop runs per real listener; each accepted connection is matched
// to its dialer by nonce on a short-lived goroutine so one slow handshake
// cannot block the next accept.
func (b *Backend) acceptLoop(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go b.matchDial(c)
	}
}

// matchDial reads the 8-byte dial nonce and hands the connection to the
// waiting Dial. Unknown nonces (stale dials that already timed out) are
// dropped.
func (b *Backend) matchDial(c net.Conn) {
	var nb [8]byte
	c.SetReadDeadline(time.Now().Add(wireTimeout))
	if _, err := io.ReadFull(c, nb[:]); err != nil {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	nonce := binary.BigEndian.Uint64(nb[:])
	b.mu.Lock()
	ch, ok := b.dials[nonce]
	if ok {
		delete(b.dials, nonce)
	}
	b.mu.Unlock()
	if !ok {
		c.Close()
		return
	}
	ch <- c // cap 1; Dial may have timed out, in which case it drains and closes
}

// Dial implements netsim.Wire: open a real TCP connection to the listener
// standing in for (dst, port) and return both endpoints' WireConns. The
// dialer writes an 8-byte nonce first so the accept side can pair the raw
// connection with this call even when several dials race.
func (b *Backend) Dial(src, dst netsim.HostID, port int) (client, server netsim.WireConn, err error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, nil, ErrShutdown
	}
	wl, ok := b.listeners[hostPort{host: dst, port: port}]
	if !ok {
		b.mu.Unlock()
		return nil, nil, fmt.Errorf("netwire: no listener for host %d port %d", dst, port)
	}
	addr := wl.ln.Addr().String()
	b.nextNonce++
	nonce := b.nextNonce
	ch := make(chan net.Conn, 1)
	b.dials[nonce] = ch
	b.mu.Unlock()

	abort := func() {
		b.mu.Lock()
		delete(b.dials, nonce)
		b.mu.Unlock()
	}
	cc, err := net.DialTimeout("tcp", addr, wireTimeout)
	if err != nil {
		abort()
		return nil, nil, fmt.Errorf("netwire: dial host %d port %d: %w", dst, port, err)
	}
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	cc.SetWriteDeadline(time.Now().Add(wireTimeout))
	if _, err := cc.Write(nb[:]); err != nil {
		abort()
		cc.Close()
		return nil, nil, fmt.Errorf("netwire: dial handshake: %w", err)
	}
	cc.SetWriteDeadline(time.Time{})

	select {
	case sc, ok := <-ch:
		if !ok || sc == nil {
			cc.Close()
			return nil, nil, ErrShutdown
		}
		b.mu.Lock()
		b.stats.Streams++
		b.mu.Unlock()
		return b.newStream(cc), b.newStream(sc), nil
	case <-time.After(wireTimeout):
		abort()
		cc.Close()
		return nil, nil, fmt.Errorf("netwire: dial host %d port %d not accepted: %w", dst, port, ErrTimeout)
	}
}

// stream is one endpoint of a real TCP connection backing a simulated
// netsim.Conn. The kernel goroutine calls Send at a segment's virtual
// send time and the peer's Recv (inside AwaitExternal) at its virtual
// delivery time; the reader goroutine parks frames by sequence number in
// between. Frames may be redeemed out of order relative to arrival —
// matching is by seq, never by position.
type stream struct {
	b    *Backend
	id   uint64 // registration key in Backend.streams
	conn net.Conn

	// hdr and iov are the send path's pooled buffers: the frame header is
	// assembled in hdr and handed to the kernel with the payload as a
	// two-element scatter-gather list (writev on TCP), so the payload is
	// never copied into a contiguous frame. Send runs on the kernel
	// goroutine only, so neither needs the lock.
	hdr [streamHeaderLen]byte
	iov net.Buffers

	mu      sync.Mutex
	frames  map[uint64][]byte
	waiters map[uint64]chan []byte
	err     error // first reader failure; set means no further frames will arrive
	closed  bool
}

func (b *Backend) newStream(c net.Conn) *stream {
	s := &stream{
		b:       b,
		conn:    c,
		frames:  make(map[uint64][]byte),
		waiters: make(map[uint64]chan []byte),
	}
	b.mu.Lock()
	b.nextSID++
	s.id = b.nextSID
	b.streams[s.id] = s
	b.mu.Unlock()
	go s.read()
	return s
}

// Send implements netsim.WireConn: encode into the backend's pooled
// scratch and write one seq-tagged frame as a header+payload
// scatter-gather pair. netsim calls this from the kernel goroutine only,
// so writes are already serialized per stream (and across streams, which
// is what lets every stream share the one scratch buffer).
func (s *stream) Send(seq uint64, payload any) error {
	data, err := s.b.codec.AppendEncode(s.b.encScratch[:0], payload)
	if err != nil {
		return err
	}
	s.b.encScratch = data[:0] // retain grown capacity for the next frame
	if len(data) > maxFrame {
		return fmt.Errorf("netwire: frame seq %d: %d bytes exceeds maxFrame", seq, len(data)) // lint:alloc error path, oversized frame
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("netwire: send seq %d on closed stream", seq) // lint:alloc error path, stream already torn down
	}
	s.mu.Unlock()

	n := len(data)
	binary.BigEndian.PutUint64(s.hdr[0:], seq)
	binary.BigEndian.PutUint32(s.hdr[8:], uint32(n))
	s.iov = append(s.iov[:0], s.hdr[:], data)
	s.conn.SetWriteDeadline(time.Now().Add(wireTimeout))
	if _, err := s.iov.WriteTo(s.conn); err != nil {
		return fmt.Errorf("netwire: send seq %d: %w", seq, err) // lint:alloc error path, after the write already failed
	}
	s.conn.SetWriteDeadline(time.Time{})

	s.b.mu.Lock()
	s.b.stats.StreamFrames++
	s.b.stats.StreamBytes += int64(n)
	s.b.mu.Unlock()
	return nil
}

// Recv implements netsim.WireConn: block (inside AwaitExternal — virtual
// time frozen) until the frame tagged seq has been read off this endpoint,
// then decode it. An error means the stream was torn down before the frame
// arrived; netsim treats that delivery as dropped, which only happens for
// segments the simulation also drops (in-flight toward a closed endpoint).
func (s *stream) Recv(seq uint64) (any, error) {
	s.mu.Lock()
	if data, ok := s.frames[seq]; ok {
		delete(s.frames, seq)
		s.mu.Unlock()
		return s.b.codec.Decode(data)
	}
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return nil, fmt.Errorf("netwire: recv seq %d on dead stream: %w", seq, err)
	}
	ch := make(chan []byte, 1)
	s.waiters[seq] = ch
	s.mu.Unlock()

	select {
	case data, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("netwire: recv seq %d: stream torn down", seq)
		}
		return s.b.codec.Decode(data)
	case <-time.After(wireTimeout):
		s.mu.Lock()
		delete(s.waiters, seq)
		s.mu.Unlock()
		return nil, fmt.Errorf("netwire: frame seq %d never arrived: %w", seq, ErrTimeout)
	}
}

// Close implements netsim.WireConn: idempotent teardown of this endpoint.
// netsim schedules it after the last in-flight delivery it intends to
// redeem, so the reader failing afterward wakes only waiters for frames
// the simulation has already decided to drop.
func (s *stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.conn.Close()
	s.b.mu.Lock()
	delete(s.b.streams, s.id)
	s.b.mu.Unlock()
}

// read is the per-endpoint bridge goroutine: it parses seq-tagged frames
// off the TCP connection and parks them for Recv. It exits on the first
// read error (peer close, our Close, Shutdown), waking all parked waiters
// with a torn-down error.
func (s *stream) read() {
	var hdr [streamHeaderLen]byte
	for {
		if _, err := io.ReadFull(s.conn, hdr[:]); err != nil {
			s.fail(err)
			return
		}
		seq := binary.BigEndian.Uint64(hdr[0:])
		n := binary.BigEndian.Uint32(hdr[8:])
		if n > maxFrame {
			s.fail(fmt.Errorf("netwire: frame seq %d: length %d exceeds maxFrame", seq, n))
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(s.conn, data); err != nil {
			s.fail(err)
			return
		}
		s.mu.Lock()
		if ch, ok := s.waiters[seq]; ok {
			delete(s.waiters, seq)
			s.mu.Unlock()
			ch <- data // cap 1; one frame per seq
		} else {
			s.frames[seq] = data
			s.mu.Unlock()
		}
	}
}

// fail records the reader's terminal error and wakes every parked waiter.
func (s *stream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	chans := make([]chan []byte, 0, len(s.waiters))
	for _, seq := range sortedKeys(s.waiters) {
		chans = append(chans, s.waiters[seq])
	}
	s.waiters = make(map[uint64]chan []byte)
	s.mu.Unlock()
	for _, ch := range chans {
		close(ch)
	}
}

var _ netsim.WireConn = (*stream)(nil)

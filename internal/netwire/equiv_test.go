package netwire_test

import (
	"fmt"
	"testing"

	"pvmigrate/internal/harness"
	"pvmigrate/internal/netwire"
	"pvmigrate/internal/sim"
)

// wireCodecs is the codec axis of the equivalence matrix: the default
// binary codec and the legacy gob codec, both of which must be
// trace-invisible.
var wireCodecs = []struct {
	name  string
	codec netwire.WireCodec
}{
	{"binary", netwire.BinaryCodec{}},
	{"gob", netwire.GobCodec{}},
}

// The central contract of the wire backend: it substitutes payload bytes
// only, never timing. A full MPVM migration scenario — spawn, compute,
// flush barrier, skeleton handshake, TCP state stream, restart broadcast —
// must produce the identical virtual-time protocol trace, application
// runtime, and migration measurements whether payloads ride the in-memory
// backend or real loopback sockets, for every codec × transport-routing
// combination (binary/gob × daemon-datagram/direct-TCP).
func TestCrossBackendEquivalence(t *testing.T) {
	for _, cc := range wireCodecs {
		for _, direct := range []bool{false, true} {
			t.Run(fmt.Sprintf("codec=%s/direct=%v", cc.name, direct), func(t *testing.T) {
				sc := harness.Scenario{
					Seed:      7,
					MigrateAt: 8 * sim.FromSeconds(1),
					Direct:    direct,
				}

				memLog, memOut := harness.TraceMPVMMigration(sc)
				if memOut.Err != nil {
					t.Fatalf("in-memory run: %v", memOut.Err)
				}

				b := netwire.NewWithCodec(cc.codec)
				defer b.Shutdown()
				sc.Wire = b
				wireLog, wireOut := harness.TraceMPVMMigration(sc)
				if wireOut.Err != nil {
					t.Fatalf("wire run: %v", wireOut.Err)
				}

				memTL := memLog.Timeline("stages:")
				wireTL := wireLog.Timeline("stages:")
				if memTL != wireTL {
					t.Errorf("protocol timelines diverge:\n--- in-memory ---\n%s\n--- wire ---\n%s", memTL, wireTL)
				}
				if memOut.Elapsed != wireOut.Elapsed {
					t.Errorf("Elapsed: in-memory %v, wire %v", memOut.Elapsed, wireOut.Elapsed)
				}
				if len(memOut.Records) != len(wireOut.Records) {
					t.Fatalf("migration records: in-memory %d, wire %d", len(memOut.Records), len(wireOut.Records))
				}
				for i := range memOut.Records {
					if memOut.Records[i] != wireOut.Records[i] {
						t.Errorf("record %d: in-memory %+v, wire %+v", i, memOut.Records[i], wireOut.Records[i])
					}
				}
				if memOut.Result.Iterations != wireOut.Result.Iterations {
					t.Errorf("iterations: in-memory %d, wire %d", memOut.Result.Iterations, wireOut.Result.Iterations)
				}

				st := b.Stats()
				if st.Dgrams == 0 {
					t.Error("wire run sent no datagrams — backend was not exercised")
				}
				if st.Streams == 0 || st.StreamFrames == 0 {
					t.Error("wire run opened no streams — the state transfer bypassed the wire")
				}
			})
		}
	}
}

// The baseline PVM application (no migration machinery) must also be
// backend-invariant — this covers the steady-state data path at scale:
// four hosts, daemon-routed and direct variants, thousands of frames,
// under both codecs.
func TestCrossBackendEquivalencePVM(t *testing.T) {
	for _, cc := range wireCodecs {
		for _, direct := range []bool{false, true} {
			sc := harness.Scenario{Hosts: 4, Seed: 3, Direct: direct}
			mem := harness.RunPVM(sc)
			if mem.Err != nil {
				t.Fatalf("in-memory run (codec=%s direct=%v): %v", cc.name, direct, mem.Err)
			}
			b := netwire.NewWithCodec(cc.codec)
			sc.Wire = b
			wire := harness.RunPVM(sc)
			st := b.Stats()
			b.Shutdown()
			if wire.Err != nil {
				t.Fatalf("wire run (codec=%s direct=%v): %v", cc.name, direct, wire.Err)
			}
			if mem.Elapsed != wire.Elapsed {
				t.Errorf("codec=%s direct=%v: Elapsed in-memory %v, wire %v", cc.name, direct, mem.Elapsed, wire.Elapsed)
			}
			// Daemon routing carries data as datagrams; direct routing dials
			// task-to-task streams (and may need no cross-host datagrams at all).
			if !direct && st.Dgrams == 0 {
				t.Errorf("codec=%s direct=%v: wire run sent no datagrams", cc.name, direct)
			}
			if direct && st.Streams == 0 {
				t.Errorf("codec=%s direct=%v: no task-to-task streams hit the wire", cc.name, direct)
			}
		}
	}
}

// Package netwire is the real-socket transport backend behind
// netsim.Wire: every cross-host frame the simulated network delivers also
// rides a loopback UDP datagram (datagram ports) or a real TCP connection
// (streams), round-tripping through marshal → syscall → unmarshal before
// the receiver sees it.
//
// The deterministic kernel stays the only clock. netsim computes every
// arrival time from its cost model exactly as in the in-memory backend;
// netwire substitutes *payload bytes only*, never timing. At a frame's
// virtual send time the payload is encoded and written to a socket; at its
// virtual delivery time the kernel calls sim.Kernel.AwaitExternal, which
// freezes virtual time while the matching bytes are read back and decoded.
// Wall-clock latency of the socket round trip is therefore invisible to
// the simulation — fingerprints stay seed-deterministic while payloads
// prove they survive a real wire.
//
// Everything built on internal/sim is single-threaded by construction, and
// the pvmlint rawgoroutine analyzer forbids host concurrency above the
// kernel. This package is the third sanctioned exception (after the
// kernel's own coroutine trampoline in internal/sim and the independent-
// run fan-out in internal/sweep): socket reads must happen on host
// goroutines because the kernel goroutine is the one blocked inside
// AwaitExternal waiting for them. The bridge goroutines touch no simulation
// state — they move opaque []byte blobs into mutex-guarded maps keyed by
// token (datagrams) or sequence number (stream frames), and the kernel
// goroutine does all encoding and decoding itself. netwire is allowlisted
// in internal/lint.Config.ConcurrencyAllow and (for its socket deadlines,
// which bound AwaitExternal against a lost datagram) WallClockAllow.
package netwire

import (
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"slices"
	"sync"
	"time"

	"pvmigrate/internal/netsim"
)

// wireTimeout bounds every blocking socket operation. The simulation is
// correct only if every frame written is eventually read back, so a wait
// this long means bytes were truly lost (or a bug desynchronized send and
// receive bookkeeping); the bounded wait turns that hang into an error the
// caller can surface. Loopback sockets make 30s effectively infinite.
const wireTimeout = 30 * time.Second

// maxChunk is the datagram fragment payload size. Loopback UDP carries
// ~64KB per packet; 32KB chunks leave comfortable headroom for the header
// while keeping fragment counts low for typical control messages (which
// fit in one).
const maxChunk = 32 << 10

// dgramMagic guards against stray traffic on the ephemeral UDP ports.
const dgramMagic = 0x70766d77 // "pvmw"

// Datagram fragment header: magic u32 | token u64 | fragIdx u16 | nFrags u16.
const dgramHeaderLen = 16

// ErrShutdown is returned by operations on a Backend after Shutdown.
var ErrShutdown = errors.New("netwire: backend shut down")

// ErrTimeout is wrapped into errors from waits that exceeded wireTimeout.
var ErrTimeout = errors.New("netwire: wire timeout")

// Stats counts real traffic carried for the simulation. All fields are
// cumulative since New.
type Stats struct {
	Dgrams       int64 // datagrams sent (logical, pre-fragmentation)
	DgramPackets int64 // UDP packets written (after fragmentation)
	DgramBytes   int64 // encoded payload bytes across all datagrams
	Streams      int64 // TCP connections dialed
	StreamFrames int64 // stream frames sent
	StreamBytes  int64 // encoded payload bytes across all stream frames
}

// Backend implements netsim.Wire over loopback sockets: one UDP socket per
// attached host for datagrams, one real TCP connection per simulated
// stream. Install it via netsim.Params.Wire and Shutdown it when the run
// ends. Methods are called from the kernel goroutine (netsim is
// single-threaded); the internal mutex exists to coordinate with the
// socket reader goroutines, not with other callers.
type Backend struct {
	codec WireCodec

	// encScratch and pkt are the pooled encode buffers for the send hot
	// path. Send methods (SendDgram, stream.Send) run on the kernel
	// goroutine only — netsim is single-threaded — so these need no lock:
	// the bridge goroutines never touch them. encScratch holds one frame's
	// codec output and is retained between sends, so a steady-state encode
	// costs zero allocations; pkt is the fixed-size datagram assembly
	// buffer (header + one fragment).
	encScratch []byte
	pkt        []byte

	mu        sync.Mutex
	closed    bool
	hosts     map[netsim.HostID]*hostSock
	listeners map[hostPort]*wireListener
	arrived   map[uint64][]byte      // datagrams read before RecvDgram asked
	waiters   map[uint64]chan []byte // RecvDgram blocked on arrival
	dials     map[uint64]chan net.Conn
	streams   map[uint64]*stream
	nextToken uint64
	nextNonce uint64
	nextSID   uint64
	stats     Stats
}

type hostSock struct {
	udp  *net.UDPConn
	addr netip.AddrPort // WriteToUDPAddrPort avoids the per-write sockaddr allocation
}

type hostPort struct {
	host netsim.HostID
	port int
}

type wireListener struct {
	ln net.Listener
}

// New builds a Backend using the default BinaryCodec (internal/wirefmt).
func New() *Backend {
	return NewWithCodec(BinaryCodec{})
}

// NewWithCodec builds a Backend with a custom payload codec (GobCodec for
// the legacy byte stream, or anything implementing WireCodec).
func NewWithCodec(c WireCodec) *Backend {
	return &Backend{
		codec:     c,
		pkt:       make([]byte, dgramHeaderLen+maxChunk),
		hosts:     make(map[netsim.HostID]*hostSock),
		listeners: make(map[hostPort]*wireListener),
		arrived:   make(map[uint64][]byte),
		waiters:   make(map[uint64]chan []byte),
		dials:     make(map[uint64]chan net.Conn),
		streams:   make(map[uint64]*stream),
	}
}

// AttachHost implements netsim.Wire: it binds the host's loopback UDP
// socket and starts its reader. Binding can only fail for environmental
// reasons (no loopback interface, fd exhaustion) that make the whole run
// impossible, so failure panics rather than limping on.
func (b *Backend) AttachHost(h netsim.HostID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		panic("netwire: AttachHost after Shutdown")
	}
	if _, err := b.hostLocked(h); err != nil {
		panic(fmt.Sprintf("netwire: cannot bind UDP socket for host %d: %v", h, err))
	}
}

// hostLocked returns the UDP socket for h, binding it on first use.
// Callers hold b.mu.
func (b *Backend) hostLocked(h netsim.HostID) (*hostSock, error) {
	if s, ok := b.hosts[h]; ok {
		return s, nil
	}
	// lint:alloc first-use socket bind, once per host; steady-state sends hit the cache above
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		return nil, err
	}
	// Bursts accumulate between a frame's virtual send and delivery; a
	// large kernel buffer plus the always-draining reader goroutine keeps
	// loopback loss out of the picture.
	_ = conn.SetReadBuffer(8 << 20)
	_ = conn.SetWriteBuffer(8 << 20)
	// lint:alloc first-use socket bind, once per host; steady-state sends hit the cache above
	s := &hostSock{udp: conn, addr: conn.LocalAddr().(*net.UDPAddr).AddrPort()}
	b.hosts[h] = s
	go b.readDgrams(s) // lint:alloc one reader goroutine per host socket, spawned at first-use bind only
	return s, nil
}

// SendDgram implements netsim.Wire: encode the payload now (at the frame's
// virtual send time) into the pooled scratch buffer and write it toward
// dst's UDP socket, fragmented into maxChunk pieces assembled in the
// pooled packet buffer. The returned token is redeemed exactly once by
// RecvDgram at the frame's virtual delivery time. Steady state this path
// performs no allocations: the codec appends into retained scratch, the
// packet buffer is fixed-size, and the AddrPort write needs no sockaddr
// conversion.
func (b *Backend) SendDgram(src netsim.HostID, srcPort int, dst netsim.HostID, dstPort int, payload any) (uint64, error) {
	data, err := b.codec.AppendEncode(b.encScratch[:0], payload)
	if err != nil {
		return 0, err
	}
	b.encScratch = data[:0] // retain grown capacity for the next frame
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, ErrShutdown
	}
	srcSock, err := b.hostLocked(src)
	if err != nil {
		b.mu.Unlock()
		return 0, err
	}
	dstSock, err := b.hostLocked(dst)
	if err != nil {
		b.mu.Unlock()
		return 0, err
	}
	b.nextToken++
	tok := b.nextToken
	b.mu.Unlock()

	nfrags := (len(data) + maxChunk - 1) / maxChunk
	if nfrags == 0 {
		nfrags = 1 // zero-byte payloads still travel as one packet
	}
	pkt := b.pkt
	binary.BigEndian.PutUint32(pkt[0:], dgramMagic)
	binary.BigEndian.PutUint64(pkt[4:], tok)
	binary.BigEndian.PutUint16(pkt[14:], uint16(nfrags))
	for i := 0; i < nfrags; i++ {
		lo := i * maxChunk
		hi := lo + maxChunk
		if hi > len(data) {
			hi = len(data)
		}
		binary.BigEndian.PutUint16(pkt[12:], uint16(i))
		n := copy(pkt[dgramHeaderLen:], data[lo:hi])
		if _, err := srcSock.udp.WriteToUDPAddrPort(pkt[:dgramHeaderLen+n], dstSock.addr); err != nil {
			return 0, fmt.Errorf("netwire: dgram %d->%d: %w", src, dst, err) // lint:alloc error path, after the write already failed
		}
	}

	b.mu.Lock()
	b.stats.Dgrams++
	b.stats.DgramPackets += int64(nfrags)
	b.stats.DgramBytes += int64(len(data))
	b.mu.Unlock()
	return tok, nil
}

// RecvDgram implements netsim.Wire: block (inside AwaitExternal — virtual
// time is frozen) until the datagram identified by token has been read off
// the destination socket, then decode and return it.
func (b *Backend) RecvDgram(token uint64) (any, error) {
	b.mu.Lock()
	if data, ok := b.arrived[token]; ok {
		delete(b.arrived, token)
		b.mu.Unlock()
		return b.codec.Decode(data)
	}
	if b.closed {
		b.mu.Unlock()
		return nil, ErrShutdown
	}
	ch := make(chan []byte, 1)
	b.waiters[token] = ch
	b.mu.Unlock()

	select {
	case data, ok := <-ch:
		if !ok {
			return nil, ErrShutdown
		}
		return b.codec.Decode(data)
	case <-time.After(wireTimeout):
		b.mu.Lock()
		delete(b.waiters, token)
		b.mu.Unlock()
		return nil, fmt.Errorf("netwire: datagram token %d never arrived: %w", token, ErrTimeout)
	}
}

// readDgrams is the per-host bridge goroutine: it drains the UDP socket,
// reassembles fragments, and hands complete datagrams to deliverDgram. It
// exits when Shutdown closes the socket. Partial-fragment state is local
// to this goroutine (fragments of one token all arrive on one socket).
func (b *Backend) readDgrams(s *hostSock) {
	type partial struct {
		frags [][]byte
		got   int
	}
	partials := make(map[uint64]*partial)
	buf := make([]byte, dgramHeaderLen+maxChunk+512)
	for {
		n, err := s.udp.Read(buf)
		if err != nil {
			return
		}
		if n < dgramHeaderLen || binary.BigEndian.Uint32(buf) != dgramMagic {
			continue
		}
		tok := binary.BigEndian.Uint64(buf[4:])
		idx := int(binary.BigEndian.Uint16(buf[12:]))
		nfrags := int(binary.BigEndian.Uint16(buf[14:]))
		frag := append([]byte(nil), buf[dgramHeaderLen:n]...)
		if nfrags <= 1 {
			b.deliverDgram(tok, frag)
			continue
		}
		p := partials[tok]
		if p == nil {
			p = &partial{frags: make([][]byte, nfrags)}
			partials[tok] = p
		}
		if idx < len(p.frags) && p.frags[idx] == nil {
			p.frags[idx] = frag
			p.got++
		}
		if p.got == len(p.frags) {
			delete(partials, tok)
			var whole []byte
			for _, f := range p.frags {
				whole = append(whole, f...)
			}
			b.deliverDgram(tok, whole)
		}
	}
}

// deliverDgram hands a reassembled datagram to its waiter, or parks it for
// the RecvDgram that has not asked yet.
func (b *Backend) deliverDgram(token uint64, data []byte) {
	b.mu.Lock()
	if ch, ok := b.waiters[token]; ok {
		delete(b.waiters, token)
		b.mu.Unlock()
		ch <- data // cap 1; exactly one delivery per token
		return
	}
	b.arrived[token] = data
	b.mu.Unlock()
}

// Stats returns a snapshot of the traffic counters.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Shutdown closes every socket and wakes every waiter with an error. It is
// idempotent and must be called when the run ends; reader goroutines exit
// as their sockets close.
func (b *Backend) Shutdown() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	socks := make([]*hostSock, 0, len(b.hosts))
	for _, h := range sortedKeys(b.hosts) {
		socks = append(socks, b.hosts[h])
	}
	lns := make([]*wireListener, 0, len(b.listeners))
	for _, hp := range sortedHostPorts(b.listeners) {
		lns = append(lns, b.listeners[hp])
	}
	waiterChans := make([]chan []byte, 0, len(b.waiters))
	for _, tok := range sortedKeys(b.waiters) {
		waiterChans = append(waiterChans, b.waiters[tok])
	}
	b.waiters = make(map[uint64]chan []byte)
	dialChans := make([]chan net.Conn, 0, len(b.dials))
	for _, nonce := range sortedKeys(b.dials) {
		dialChans = append(dialChans, b.dials[nonce])
	}
	b.dials = make(map[uint64]chan net.Conn)
	strs := make([]*stream, 0, len(b.streams))
	for _, id := range sortedKeys(b.streams) {
		strs = append(strs, b.streams[id])
	}
	b.streams = make(map[uint64]*stream)
	b.mu.Unlock()

	for _, s := range socks {
		s.udp.Close()
	}
	for _, wl := range lns {
		wl.ln.Close()
	}
	for _, ch := range waiterChans {
		close(ch)
	}
	for _, ch := range dialChans {
		close(ch)
	}
	for _, s := range strs {
		s.Close()
	}
}

// sortedKeys returns a map's keys in ascending order: teardown fan-out is
// order-insensitive in effect, but deterministic iteration keeps the
// maporder invariant trivially true for the whole package.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func sortedHostPorts[V any](m map[hostPort]V) []hostPort {
	keys := make([]hostPort, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b hostPort) int {
		if a.host != b.host {
			return int(a.host) - int(b.host)
		}
		return a.port - b.port
	})
	return keys
}

var _ netsim.Wire = (*Backend)(nil)

package netwire

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"pvmigrate/internal/wirefmt"
)

// WireCodec marshals the `Payload any` field of simulated frames for the
// trip through a real socket. Implementations must be stateless per call:
// each AppendEncode produces a self-contained blob (frames are decoded
// out of order and independently, so a streaming encoder that amortizes
// type descriptors across messages would corrupt the second decode).
//
// AppendEncode is append-style so the transport can reuse one scratch
// buffer across frames: the steady-state encode path of the default
// BinaryCodec performs zero allocations once the buffer has grown to the
// working set (pinned by TestBinaryEncodeZeroAlloc and the BENCH_WIRE
// gate).
type WireCodec interface {
	// AppendEncode appends payload's encoding to dst and returns the
	// extended slice. On error dst is returned at its original length.
	AppendEncode(dst []byte, payload any) ([]byte, error)
	// Decode parses one blob produced by AppendEncode. It must never
	// panic on malformed input.
	Decode(data []byte) (any, error)
}

// BinaryCodec is the default codec: the explicit, versioned, zero-alloc
// binary format of internal/wirefmt (magic/version/tag/length header,
// little-endian field encodings, per-package type-tag registry). Protocol
// packages register their types with wirefmt from init, exactly as they
// register gob mirrors.
type BinaryCodec struct{}

// AppendEncode implements WireCodec.
func (BinaryCodec) AppendEncode(dst []byte, payload any) ([]byte, error) {
	return wirefmt.Append(dst, payload)
}

// Decode implements WireCodec.
func (BinaryCodec) Decode(data []byte) (any, error) {
	return wirefmt.Decode(data)
}

// GobCodec is the legacy codec: encoding/gob with a fresh encoder per
// frame, wrapping the payload in a single-field envelope so nil and
// primitive payloads round-trip like any other. It is no longer the
// default — BinaryCodec is — but stays behind the WireCodec interface so
// the two codecs can be differentially tested against each other and so
// `-wirecodec gob` can reproduce the old byte stream. Concrete payload
// types are registered by their owning packages (pvm, mpvm, ft register
// their protocol types; core.Buffer implements GobEncoder directly); the
// basics are registered below so ad-hoc test payloads work out of the box.
type GobCodec struct{}

type envelope struct {
	V any
}

func init() {
	// Primitive payloads carried bare inside `any` fields.
	gob.Register("")
	gob.Register(0)
	gob.Register(int64(0))
	gob.Register(0.0)
	gob.Register(false)
	gob.Register([]byte(nil))
	gob.Register([]int(nil))
	gob.Register([]float64(nil))
}

// AppendEncode implements WireCodec. Gob cannot write into a caller
// buffer, so this path allocates per frame — one of the reasons it lost
// the default slot.
func (GobCodec) AppendEncode(dst []byte, payload any) ([]byte, error) {
	var out bytes.Buffer
	// lint:alloc legacy gob codec allocates by design; BinaryCodec is the zero-alloc default
	if err := gob.NewEncoder(&out).Encode(&envelope{V: payload}); err != nil {
		return dst, fmt.Errorf("netwire: encode %T: %w", payload, err) // lint:alloc error path, after encode already failed
	}
	// lint:alloc legacy gob codec allocates by design; BinaryCodec is the zero-alloc default
	return append(dst, out.Bytes()...), nil
}

// Decode implements WireCodec.
func (GobCodec) Decode(data []byte) (any, error) {
	var e envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("netwire: decode: %w", err)
	}
	return e.V, nil
}

package netwire

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// WireCodec marshals the `Payload any` field of simulated frames for the
// trip through a real socket. Implementations must be stateless per call:
// each Encode produces a self-contained blob (frames are decoded
// out of order and independently, so a streaming encoder that amortizes
// type descriptors across messages would corrupt the second decode).
type WireCodec interface {
	Encode(payload any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// GobCodec is the default codec: encoding/gob with a fresh encoder per
// frame, wrapping the payload in a single-field envelope so nil and
// primitive payloads round-trip like any other. Concrete payload types are
// registered by their owning packages (pvm, mpvm, ft register their
// protocol types; core.Buffer implements GobEncoder directly); the basics
// are registered below so ad-hoc test payloads work out of the box.
type GobCodec struct{}

type envelope struct {
	V any
}

func init() {
	// Primitive payloads carried bare inside `any` fields.
	gob.Register("")
	gob.Register(0)
	gob.Register(int64(0))
	gob.Register(0.0)
	gob.Register(false)
	gob.Register([]byte(nil))
	gob.Register([]int(nil))
	gob.Register([]float64(nil))
}

// Encode implements WireCodec.
func (GobCodec) Encode(payload any) ([]byte, error) {
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&envelope{V: payload}); err != nil {
		return nil, fmt.Errorf("netwire: encode %T: %w", payload, err)
	}
	return out.Bytes(), nil
}

// Decode implements WireCodec.
func (GobCodec) Decode(data []byte) (any, error) {
	var e envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("netwire: decode: %w", err)
	}
	return e.V, nil
}

package netwire_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"pvmigrate/internal/core"
	"pvmigrate/internal/netwire"
)

// The wire codec's performance contract, measured head-to-head against the
// gob codec it replaced: the binary encode path runs at zero steady-state
// allocations into a pooled buffer (the transports reuse one scratch across
// frames), and every payload shape encodes to measurably fewer bytes than
// gob's self-describing stream. BenchmarkWireBaseline snapshots both codecs
// into BENCH_WIRE.json and *fails* if the binary encoder allocates — the
// gate CI runs on every push.

// benchPayloads is the payload population: the shapes the protocols
// actually put on the wire, from a heartbeat-sized int to a ~1KB message
// buffer.
func benchPayloads() []struct {
	name    string
	payload any
} {
	// Load averages are noisy measurements, not round numbers: fill the
	// vector from an LCG so the mantissas carry full entropy. (With round
	// values like 0.25 gob's trailing-zero float compression wins; that is
	// not the shape load data has.)
	loadvec := make([]float64, 64)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range loadvec {
		x = x*6364136223846793005 + 1442695040888963407
		loadvec[i] = float64(x%4000) / 1000.0 * (1 + 1e-12*float64(x>>32))
	}
	state := make([]byte, 1024)
	for i := range state {
		state[i] = byte(i * 131)
	}
	return []struct {
		name    string
		payload any
	}{
		{"int", 42},
		{"ctl-string", "state-assumed"},
		{"loadvec-64", loadvec},
		{"buffer-1k", core.NewBuffer().PkInt(7).PkString("status").PkFloat64s(loadvec).PkBytes(state)},
	}
}

func BenchmarkBinaryEncode(b *testing.B) {
	c := netwire.BinaryCodec{}
	for _, p := range benchPayloads() {
		b.Run(p.name, func(b *testing.B) {
			scratch := make([]byte, 0, 1<<16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := c.AppendEncode(scratch[:0], p.payload)
				if err != nil {
					b.Fatal(err)
				}
				scratch = out[:0]
			}
		})
	}
}

func BenchmarkGobEncode(b *testing.B) {
	c := netwire.GobCodec{}
	for _, p := range benchPayloads() {
		b.Run(p.name, func(b *testing.B) {
			scratch := make([]byte, 0, 1<<16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := c.AppendEncode(scratch[:0], p.payload)
				if err != nil {
					b.Fatal(err)
				}
				scratch = out[:0]
			}
		})
	}
}

func BenchmarkBinaryDecode(b *testing.B) {
	c := netwire.BinaryCodec{}
	for _, p := range benchPayloads() {
		frame, err := c.AppendEncode(nil, p.payload)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGobDecode(b *testing.B) {
	c := netwire.GobCodec{}
	for _, p := range benchPayloads() {
		frame, err := c.AppendEncode(nil, p.payload)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- baseline snapshot -------------------------------------------------------

type codecStat struct {
	BytesPerFrame  int     `json:"bytes_per_frame"`
	EncodeNsPerOp  float64 `json:"encode_ns_per_op"`
	EncodeAllocs   int64   `json:"encode_allocs_per_op"`
	DecodeNsPerOp  float64 `json:"decode_ns_per_op"`
	DecodeAllocs   int64   `json:"decode_allocs_per_op"`
	EncodeMBPerSec float64 `json:"encode_mb_per_sec"`
}

type payloadBaseline struct {
	Payload    string    `json:"payload"`
	Binary     codecStat `json:"binary"`
	Gob        codecStat `json:"gob"`
	BytesRatio float64   `json:"gob_bytes_over_binary"`
}

type wireBaseline struct {
	GoMaxProcs int               `json:"go_max_procs"`
	Payloads   []payloadBaseline `json:"payloads"`
}

// measureLoop times n iterations of fn with malloc counts bracketing the
// run. Hand-rolled rather than testing.Benchmark because the latter takes
// the testing package's global benchmark lock and deadlocks when invoked
// from inside a running benchmark (same constraint as BenchmarkKernelBaseline).
func measureLoop(n int, fn func() error) (nsPerOp float64, allocsPerOp int64, err error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)
	return float64(dur.Nanoseconds()) / float64(n), int64(m1.Mallocs-m0.Mallocs) / int64(n), nil
}

func measureCodec(b *testing.B, c netwire.WireCodec, payload any, n int) codecStat {
	frame, err := c.AppendEncode(nil, payload)
	if err != nil {
		b.Fatalf("encode %T: %v", payload, err)
	}
	scratch := make([]byte, 0, 1<<16)
	// Warm the pooled buffer before the measured window, exactly as the
	// transports do: steady state means capacity has already grown.
	if out, err := c.AppendEncode(scratch[:0], payload); err == nil {
		scratch = out[:0]
	}
	encNs, encAllocs, err := measureLoop(n, func() error {
		out, err := c.AppendEncode(scratch[:0], payload)
		scratch = out[:0]
		return err
	})
	if err != nil {
		b.Fatalf("encode loop %T: %v", payload, err)
	}
	decNs, decAllocs, err := measureLoop(n, func() error {
		_, err := c.Decode(frame)
		return err
	})
	if err != nil {
		b.Fatalf("decode loop %T: %v", payload, err)
	}
	return codecStat{
		BytesPerFrame:  len(frame),
		EncodeNsPerOp:  encNs,
		EncodeAllocs:   encAllocs,
		DecodeNsPerOp:  decNs,
		DecodeAllocs:   decAllocs,
		EncodeMBPerSec: float64(len(frame)) / encNs * 1e9 / (1 << 20),
	}
}

var wireBaselineOnce sync.Once

// BenchmarkWireBaseline measures both codecs over the payload population
// and writes the snapshot to BENCH_WIRE.json (or $BENCH_WIRE_OUT). It is
// also the enforcement point for the codec's two headline claims: the
// binary encoder performs zero steady-state allocations, and every payload
// encodes smaller than gob. CI runs it via
// `go test -bench=WireBaseline -benchtime=1x ./internal/netwire` and
// uploads the file; the committed repo-root BENCH_WIRE.json is the
// long-form baseline.
func BenchmarkWireBaseline(b *testing.B) {
	wireBaselineOnce.Do(func() {
		const n = 200_000
		base := wireBaseline{GoMaxProcs: runtime.GOMAXPROCS(0)}
		for _, p := range benchPayloads() {
			pb := payloadBaseline{
				Payload: p.name,
				Binary:  measureCodec(b, netwire.BinaryCodec{}, p.payload, n),
				Gob:     measureCodec(b, netwire.GobCodec{}, p.payload, n/10),
			}
			pb.BytesRatio = float64(pb.Gob.BytesPerFrame) / float64(pb.Binary.BytesPerFrame)
			if pb.Binary.EncodeAllocs != 0 {
				b.Fatalf("payload %s: binary encode allocates %d/op steady-state, want 0", p.name, pb.Binary.EncodeAllocs)
			}
			if pb.Binary.BytesPerFrame >= pb.Gob.BytesPerFrame {
				b.Fatalf("payload %s: binary frame %dB is not smaller than gob %dB", p.name, pb.Binary.BytesPerFrame, pb.Gob.BytesPerFrame)
			}
			base.Payloads = append(base.Payloads, pb)
		}
		out := os.Getenv("BENCH_WIRE_OUT")
		if out == "" {
			out = "BENCH_WIRE.json"
		}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			b.Fatalf("marshal baseline: %v", err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			b.Fatalf("write %s: %v", out, err)
		}
		b.Logf("wire baseline written to %s: %s", out, data)
	})
}

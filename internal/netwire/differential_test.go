package netwire_test

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pvmigrate/internal/core"
	"pvmigrate/internal/netwire"
	"pvmigrate/internal/sweep"
)

func init() {
	// Production traffic only carries buffers inside Message.Buf (a
	// concrete field), so nothing registers the bare type with gob; the
	// randomized harness sends them as top-level payloads.
	gob.Register(&core.Buffer{})
}

// randBuffer packs a random mix of every item kind. Slice-valued items are
// always non-empty: gob's mirror normalizes empty slices to nil on decode,
// so empty-but-non-nil inputs would diff the codecs on a gob quirk rather
// than a real disagreement (the binary codec preserves the distinction —
// TestNilVersusEmptySlices in wirefmt pins that).
func randBuffer(r *rand.Rand, depth int) *core.Buffer {
	b := core.NewBuffer()
	for i, n := 0, 1+r.Intn(5); i < n; i++ {
		switch k := r.Intn(6); {
		case k == 0:
			b.PkInt(r.Int() - r.Int())
		case k == 1:
			fs := make([]float64, 1+r.Intn(4))
			for j := range fs {
				fs[j] = r.NormFloat64()
			}
			b.PkFloat64s(fs)
		case k == 2:
			bs := make([]byte, 1+r.Intn(32))
			r.Read(bs)
			b.PkBytes(bs)
		case k == 3:
			b.PkString(fmt.Sprintf("s%x", r.Uint64()))
		case k == 4:
			b.PkVirtual(r.Intn(1 << 20))
		case k == 5 && depth < 3:
			b.PkBuffer(randBuffer(r, depth+1))
		default:
			b.PkInt(r.Intn(1000))
		}
	}
	return b
}

// randPayload draws from every payload shape the transports carry.
func randPayload(r *rand.Rand) any {
	switch r.Intn(8) {
	case 0:
		return nil
	case 1:
		return r.Intn(2) == 1
	case 2:
		return r.Int() - r.Int()
	case 3:
		return r.NormFloat64()
	case 4:
		return fmt.Sprintf("payload-%x", r.Uint64())
	case 5:
		bs := make([]byte, 1+r.Intn(256))
		r.Read(bs)
		return bs
	case 6:
		fs := make([]float64, 1+r.Intn(64))
		for j := range fs {
			fs[j] = r.NormFloat64()
		}
		return fs
	default:
		return randBuffer(r, 0)
	}
}

// Randomized differential cross-check: both codecs must agree on the
// decoded value for a large randomized payload population, reusing the
// sweep harness so the population is deterministic per seed and generated
// in parallel.
func TestCodecDifferentialRandomized(t *testing.T) {
	failures := sweep.Seeds(16, 4, func(seed uint64) string {
		r := rand.New(rand.NewSource(int64(seed)))
		bin, gc := netwire.BinaryCodec{}, netwire.GobCodec{}
		for i := 0; i < 64; i++ {
			p := randPayload(r)
			bdata, err := bin.AppendEncode(nil, p)
			if err != nil {
				return fmt.Sprintf("seed %d payload %d (%T): binary encode: %v", seed, i, p, err)
			}
			gdata, err := gc.AppendEncode(nil, p)
			if err != nil {
				return fmt.Sprintf("seed %d payload %d (%T): gob encode: %v", seed, i, p, err)
			}
			bv, err := bin.Decode(bdata)
			if err != nil {
				return fmt.Sprintf("seed %d payload %d (%T): binary decode: %v", seed, i, p, err)
			}
			gv, err := gc.Decode(gdata)
			if err != nil {
				return fmt.Sprintf("seed %d payload %d (%T): gob decode: %v", seed, i, p, err)
			}
			if !reflect.DeepEqual(bv, gv) {
				return fmt.Sprintf("seed %d payload %d (%T): codecs disagree:\nbinary %#v\n   gob %#v", seed, i, p, bv, gv)
			}
			if !reflect.DeepEqual(bv, p) {
				return fmt.Sprintf("seed %d payload %d (%T): binary round trip %#v != original %#v", seed, i, p, bv, p)
			}
		}
		return ""
	})
	for _, f := range failures {
		if f != "" {
			t.Error(f)
		}
	}
}

// The default codec's steady-state encode path must not allocate once the
// pooled buffer has grown to the working set — this is what lets SendDgram
// and stream.Send reuse one scratch buffer with zero garbage per frame.
// The BENCH_WIRE gate enforces the same invariant under the benchmark
// workload; this is the fast always-on check.
func TestBinaryEncodeZeroAlloc(t *testing.T) {
	c := netwire.BinaryCodec{}
	loadvec := make([]float64, 64)
	for i := range loadvec {
		loadvec[i] = float64(i) * 0.25
	}
	payloads := []any{
		"state-assumed",
		42,
		loadvec,
		core.NewBuffer().PkInt(7).PkString("status").PkFloat64s(loadvec).PkBytes(make([]byte, 1024)),
	}
	scratch := make([]byte, 0, 1<<16)
	for _, p := range payloads {
		p := p
		allocs := testing.AllocsPerRun(200, func() {
			out, err := c.AppendEncode(scratch[:0], p)
			if err != nil {
				t.Fatal(err)
			}
			scratch = out[:0]
		})
		if allocs != 0 {
			t.Errorf("AppendEncode(%T) allocates %.1f/op steady-state, want 0", p, allocs)
		}
	}
}

package netwire_test

import (
	"bytes"
	"errors"
	"testing"

	"pvmigrate/internal/netsim"
	"pvmigrate/internal/netwire"
	"pvmigrate/internal/sim"
)

// wireNet builds a kernel + two-host netsim network carried by a fresh
// netwire backend. The caller must Shutdown the returned backend.
func wireNet(t *testing.T) (*sim.Kernel, *netsim.Network, *netwire.Backend) {
	t.Helper()
	k := sim.NewKernel()
	b := netwire.New()
	t.Cleanup(b.Shutdown)
	n := netsim.New(k, netsim.Params{Wire: b})
	n.Attach(0)
	n.Attach(1)
	return k, n, b
}

// A cross-host datagram's payload must round-trip through the real UDP
// socket byte-identically, and the redemption must have passed through
// AwaitExternal (virtual time frozen while the socket was read).
func TestDgramRoundTripOverWire(t *testing.T) {
	k, n, b := wireNet(t)
	q, _ := n.Iface(1).BindDgram(700)
	var got any
	k.Spawn("sink", func(p *sim.Proc) {
		d, err := q.Get(p)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		got = d.Payload
	})
	n.Iface(0).SendDgram(701, 1, 700, 512, "over-the-wire")
	k.Run()

	if got != "over-the-wire" {
		t.Fatalf("payload = %v (%T), want the sent string", got, got)
	}
	if st := b.Stats(); st.Dgrams != 1 || st.DgramBytes == 0 {
		t.Fatalf("stats = %+v, want 1 datagram with bytes", st)
	}
	if k.ExternalWaits() == 0 {
		t.Fatal("delivery never passed through AwaitExternal")
	}
}

// Payloads larger than one UDP packet are fragmented and reassembled; the
// packet counter proves fragmentation actually happened.
func TestDgramFragmentation(t *testing.T) {
	k, n, b := wireNet(t)
	big := make([]byte, 100<<10) // > 3 × 32KB chunks
	for i := range big {
		big[i] = byte(i * 31)
	}
	q, _ := n.Iface(1).BindDgram(700)
	var got []byte
	k.Spawn("sink", func(p *sim.Proc) {
		d, err := q.Get(p)
		if err != nil {
			return
		}
		got, _ = d.Payload.([]byte)
	})
	n.Iface(0).SendDgram(701, 1, 700, len(big), big)
	k.Run()

	if !bytes.Equal(got, big) {
		t.Fatalf("payload corrupted: got %d bytes, want %d intact", len(got), len(big))
	}
	if st := b.Stats(); st.DgramPackets < 4 {
		t.Fatalf("DgramPackets = %d, want >= 4 (payload should have fragmented)", st.DgramPackets)
	}
}

// Same-host datagrams must bypass the wire entirely: local control
// messages carry non-serializable payloads (reply closures), so marshaling
// them would panic.
func TestLoopbackDgramBypassesWire(t *testing.T) {
	k, n, b := wireNet(t)
	q, _ := n.Iface(0).BindDgram(700)
	closure := func() {}
	var got any
	k.Spawn("sink", func(p *sim.Proc) {
		d, err := q.Get(p)
		if err != nil {
			return
		}
		got = d.Payload
	})
	n.Iface(0).SendDgram(701, 0, 700, 64, closure)
	k.Run()

	if got == nil {
		t.Fatal("loopback datagram not delivered")
	}
	if st := b.Stats(); st.Dgrams != 0 {
		t.Fatalf("loopback traffic hit the wire: stats %+v", st)
	}
}

// Stream payloads ride a real TCP connection; every Send's bytes must come
// back from the peer's Recv in order.
func TestStreamRoundTripOverWire(t *testing.T) {
	k, n, b := wireNet(t)
	l, err := n.Iface(1).Listen(9000)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var got []string
	k.Spawn("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		for i := 0; i < 3; i++ {
			seg, err := c.Recv(p)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			s, _ := seg.Payload.(string)
			got = append(got, s)
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		c, err := n.Iface(0).Dial(p, 1, 9000)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for _, s := range []string{"alpha", "beta", "gamma"} {
			if err := c.Send(p, 2000, s); err != nil {
				t.Errorf("send %q: %v", s, err)
				return
			}
		}
	})
	k.Run()

	want := []string{"alpha", "beta", "gamma"}
	if len(got) != len(want) {
		t.Fatalf("received %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("received %v, want %v", got, want)
		}
	}
	st := b.Stats()
	if st.Streams != 1 || st.StreamFrames < 3 || st.StreamBytes == 0 {
		t.Fatalf("stats = %+v, want 1 stream with >= 3 frames", st)
	}
	if k.ExternalWaits() == 0 {
		t.Fatal("stream deliveries never passed through AwaitExternal")
	}
}

// Shutdown is idempotent and turns subsequent operations into clean errors
// rather than hangs.
func TestShutdownIdempotent(t *testing.T) {
	b := netwire.New()
	b.AttachHost(0)
	b.AttachHost(1)
	if err := b.Listen(1, 9000); err != nil {
		t.Fatalf("listen: %v", err)
	}
	b.Shutdown()
	b.Shutdown() // second call must be a no-op

	if _, err := b.SendDgram(0, 1, 1, 2, "late"); !errors.Is(err, netwire.ErrShutdown) {
		t.Fatalf("SendDgram after shutdown: err = %v, want ErrShutdown", err)
	}
	if err := b.Listen(0, 9001); !errors.Is(err, netwire.ErrShutdown) {
		t.Fatalf("Listen after shutdown: err = %v, want ErrShutdown", err)
	}
	if _, _, err := b.Dial(0, 1, 9000); !errors.Is(err, netwire.ErrShutdown) {
		t.Fatalf("Dial after shutdown: err = %v, want ErrShutdown", err)
	}
}

// Both codecs round-trip the payload shapes the protocols actually send,
// including nil (pure-timing segments) and raw bytes.
func TestCodecRoundTrip(t *testing.T) {
	for _, c := range []netwire.WireCodec{netwire.BinaryCodec{}, netwire.GobCodec{}} {
		for _, v := range []any{nil, "state-assumed", 42, []byte{1, 2, 3}, 3.5, true} {
			data, err := c.AppendEncode(nil, v)
			if err != nil {
				t.Fatalf("%T encode %T: %v", c, v, err)
			}
			got, err := c.Decode(data)
			if err != nil {
				t.Fatalf("%T decode %T: %v", c, v, err)
			}
			switch want := v.(type) {
			case []byte:
				g, ok := got.([]byte)
				if !ok || !bytes.Equal(g, want) {
					t.Fatalf("%T round trip []byte = %v, want %v", c, got, want)
				}
			default:
				if got != v {
					t.Fatalf("%T round trip %T = %v, want %v", c, v, got, v)
				}
			}
		}
	}
}

// AppendEncode must extend the caller's buffer in place and leave it
// untouched on failure — the transports' pooled-scratch discipline
// depends on both.
func TestAppendEncodeExtendsDst(t *testing.T) {
	c := netwire.BinaryCodec{}
	dst := append(make([]byte, 0, 256), "prefix"...)
	out, err := c.AppendEncode(dst, 42)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if string(out[:6]) != "prefix" || len(out) <= 6 {
		t.Fatalf("AppendEncode did not extend dst: %q", out)
	}
	if got, err := c.Decode(out[6:]); err != nil || got != 42 {
		t.Fatalf("decode appended frame = %v, %v", got, err)
	}
	if bad, err := c.AppendEncode(dst, func() {}); err == nil || len(bad) != len(dst) {
		t.Fatalf("failed encode returned (%d bytes, %v), want dst unchanged and an error", len(bad), err)
	}
}

// Encoding something unmarshalable fails loudly at Send time instead of
// silently delivering a nil payload.
func TestCodecRejectsFunctions(t *testing.T) {
	for _, c := range []netwire.WireCodec{netwire.BinaryCodec{}, netwire.GobCodec{}} {
		if _, err := c.AppendEncode(nil, func() {}); err == nil {
			t.Fatalf("%T: encoding a func payload should fail", c)
		}
	}
}

package netwire_test

import (
	"encoding/hex"
	"reflect"
	"strings"
	"testing"

	"pvmigrate/internal/errs"
	"pvmigrate/internal/netwire"

	// Blank imports pull in every protocol package's wirefmt registrations,
	// so the fuzzer exercises the real struct decoders (nested buffers,
	// TID payloads, member lists), not just the primitives.
	_ "pvmigrate/internal/ft"
	_ "pvmigrate/internal/mpvm"
	_ "pvmigrate/internal/pvm"
)

// Seed corpus: the pinned golden frames from each protocol package's
// TestGoldenWireBytes — one valid frame per message type, so the fuzzer
// starts from deep inside every registered decoder instead of having to
// discover the header by brute force.
var goldenFrameSeeds = []string{
	// core
	"50570110002900000006000e030268690103000000000000f83f00000000000000c00480010203dead05100001000208d801",
	"505701110003000000848040",
	// pvm
	"5057012000170000008280208280401280d0acf30e02100002000e0302686914",
	"50570121000d000000046b696c6c8280201100848040",
	"5057012200090000000e06776f726b657202",
	"5057012300110000000e8480400c6e6f207375636820686f7374",
	"50570124001300000006046a6f696e07776f726b6572738280200004",
	"50570125000b0000000602040382802082804000",
	// mpvm
	"5057013000110000008480200209686967682d6c6f6164848020",
	"50570131000400000084802000",
	"50570132000400000084802002",
	"50570133000f0000001684802005736c6176650080808001",
	"50570134000400000016d28c01",
	"505701350009000000848020848020868040",
	"50570136000700000084802080808001",
	// ft
	"50570140000100000006",
}

// FuzzWireFrameDecode drives arbitrary bytes through the default codec's
// decode path with all protocol types registered — the exact code an
// attacker-controlled socket peer would reach. Decode must fail with a
// structured wire error or produce a value that round-trips; it must never
// panic.
func FuzzWireFrameDecode(f *testing.F) {
	for _, h := range goldenFrameSeeds {
		b, err := hex.DecodeString(h)
		if err != nil {
			f.Fatalf("bad seed %q: %v", h, err)
		}
		f.Add(b)
	}
	c := netwire.BinaryCodec{}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := c.Decode(data)
		if err != nil {
			if !strings.HasPrefix(string(errs.CodeOf(err)), "wire.") {
				t.Fatalf("decode error is not wire-coded: %v (code %s)", err, errs.CodeOf(err))
			}
			return
		}
		re, err := c.AppendEncode(nil, v)
		if err != nil {
			t.Fatalf("accepted value %#v does not re-encode: %v", v, err)
		}
		v2, err := c.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		// Compare the canonical re-encodings, not the values: DeepEqual
		// rejects NaN == NaN, but the format preserves NaN payload bits
		// exactly, which byte equality captures.
		re2, err := c.AppendEncode(nil, v2)
		if err != nil {
			t.Fatalf("second re-encode of %#v: %v", v2, err)
		}
		if !reflect.DeepEqual(re, re2) {
			t.Fatalf("round trip drift:\n%x ->\n%x", re, re2)
		}
	})
}

package errs

import "errors"

// Envelope is the JSON error body every non-2xx control-plane response
// carries: {code, message, context}. encoding/json sorts the context keys,
// so the same failure always serializes to the same bytes (the serve
// journal's replay fingerprinting depends on deterministic rendering).
// Duplicate context keys keep the last attached value.
type Envelope struct {
	Code    Code              `json:"code"`
	Message string            `json:"message"`
	Context map[string]string `json:"context,omitempty"`
}

// ToEnvelope flattens any error into its wire envelope. Non-coded errors
// map to CodeInternal with their Error() string as the message; a coded
// error contributes its code, its message joined with its cause chain, and
// its context fields.
func ToEnvelope(err error) Envelope {
	env := Envelope{Code: CodeInternal}
	if err == nil {
		return env
	}
	env.Message = err.Error()
	var e *Error
	if !errors.As(err, &e) {
		return env
	}
	env.Code = CodeOf(e)
	env.Message = e.Message
	if e.Cause != nil {
		env.Message += ": " + e.Cause.Error()
	}
	if len(e.Context) > 0 {
		env.Context = make(map[string]string, len(e.Context))
		for _, f := range e.Context {
			env.Context[f.Key] = f.Value
		}
	}
	return env
}

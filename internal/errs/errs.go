// Package errs is pvmigrate's structured-error package: every error that
// can cross a machine boundary — a control-plane HTTP response, a journal
// entry, a scheduler decision log — carries a stable machine-readable Code
// alongside its human-readable message, plus optional key/value context.
//
// The shape follows the internal-errors discipline of the gear6io/ranger
// gateway/server/catalog split (SNIPPETS.md): New(code, message, cause),
// Newf(code, format, args...), AddContext(err, key, value), Unwrap. Codes
// are dotted lowercase strings namespaced by subsystem ("gs.no-target",
// "serve.bad-request"); the empty code means "unclassified" and renders as
// CodeInternal in envelopes so a client always sees a code.
//
// Context is an ordered list, not a map: appends preserve insertion order,
// so rendering (Error strings, JSON envelopes) is deterministic — the same
// failure always serializes to the same bytes, which the serve journal's
// replay fingerprinting depends on.
package errs

import (
	"errors"
	"fmt"
	"strings"
)

// Code is a stable machine-readable error classification, namespaced by
// subsystem with dots ("serve.not-found").
type Code string

// CodeInternal is the envelope code for errors that carry no code of their
// own: anything created outside this package.
const CodeInternal Code = "internal"

// Field is one ordered key/value context pair.
type Field struct {
	Key   string
	Value string
}

// Error is a coded error with ordered context and an optional cause.
type Error struct {
	Code    Code
	Message string
	Cause   error
	Context []Field
}

// New creates a coded error wrapping cause (which may be nil).
func New(code Code, message string, cause error) *Error {
	return &Error{Code: code, Message: message, Cause: cause}
}

// Newf creates a coded error with a formatted message and no cause. Use
// %w-free formats; attach causes with New.
func Newf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Error renders "code: message: cause [k=v k=v]".
func (e *Error) Error() string {
	var b strings.Builder
	if e.Code != "" {
		b.WriteString(string(e.Code))
		b.WriteString(": ")
	}
	b.WriteString(e.Message)
	if e.Cause != nil {
		b.WriteString(": ")
		b.WriteString(e.Cause.Error())
	}
	if len(e.Context) > 0 {
		b.WriteString(" [")
		for i, f := range e.Context {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%s", f.Key, f.Value)
		}
		b.WriteString("]")
	}
	return b.String()
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Cause }

// AddContext appends one key/value pair and returns the same error, for
// chaining. Values are rendered with %v at attach time so later mutation of
// the value cannot change the error.
func (e *Error) AddContext(key string, value any) *Error {
	e.Context = append(e.Context, Field{Key: key, Value: fmt.Sprintf("%v", value)})
	return e
}

// AddContext attaches context to any error: a *Error gains a field in
// place; anything else is wrapped into a CodeInternal *Error first. A nil
// err stays nil.
func AddContext(err error, key string, value any) error {
	if err == nil {
		return nil
	}
	var e *Error
	if !errors.As(err, &e) {
		e = New(CodeInternal, err.Error(), err)
	}
	return e.AddContext(key, value)
}

// CodeOf returns the code of the outermost *Error in err's chain, or
// CodeInternal when there is none (including nil err — callers should
// check for nil first; the fallback keeps envelopes total).
func CodeOf(err error) Code {
	var e *Error
	if errors.As(err, &e) && e.Code != "" {
		return e.Code
	}
	return CodeInternal
}

// Is reports whether err (or anything in its chain) is a *Error carrying
// code.
func Is(err error, code Code) bool {
	for err != nil {
		if e, ok := err.(*Error); ok && e.Code == code {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

package errs_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"pvmigrate/internal/errs"
)

func TestNewCarriesCodeMessageCause(t *testing.T) {
	cause := errors.New("socket closed")
	e := errs.New("serve.wire", "send failed", cause)
	if got := e.Error(); got != "serve.wire: send failed: socket closed" {
		t.Fatalf("Error() = %q", got)
	}
	if !errors.Is(e, cause) {
		t.Fatal("errors.Is should see the cause through Unwrap")
	}
	if errs.CodeOf(e) != "serve.wire" {
		t.Fatalf("CodeOf = %q", errs.CodeOf(e))
	}
}

func TestNewfFormats(t *testing.T) {
	e := errs.Newf("gs.no-target", "no movable VP on host %d", 3)
	if e.Error() != "gs.no-target: no movable VP on host 3" {
		t.Fatalf("Error() = %q", e.Error())
	}
	if e.Unwrap() != nil {
		t.Fatal("Newf errors carry no cause")
	}
}

func TestAddContextOrdersAndChains(t *testing.T) {
	e := errs.Newf("serve.bad-request", "bad job").
		AddContext("kind", "opt").
		AddContext("slaves", 0)
	want := "serve.bad-request: bad job [kind=opt slaves=0]"
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
}

func TestAddContextWrapsPlainErrors(t *testing.T) {
	plain := errors.New("boom")
	err := errs.AddContext(plain, "host", 2)
	if errs.CodeOf(err) != errs.CodeInternal {
		t.Fatalf("CodeOf = %q", errs.CodeOf(err))
	}
	if !errors.Is(err, plain) {
		t.Fatal("wrapped error must keep the original in its chain")
	}
	if errs.AddContext(nil, "k", "v") != nil {
		t.Fatal("AddContext(nil) must stay nil")
	}
}

func TestCodeOfFallsBackToInternal(t *testing.T) {
	if errs.CodeOf(errors.New("plain")) != errs.CodeInternal {
		t.Fatal("plain errors classify as internal")
	}
	// A wrapped coded error is still found through the chain.
	inner := errs.Newf("serve.not-found", "no such job")
	outer := fmt.Errorf("handling request: %w", inner)
	if errs.CodeOf(outer) != "serve.not-found" {
		t.Fatalf("CodeOf(wrapped) = %q", errs.CodeOf(outer))
	}
	if !errs.Is(outer, "serve.not-found") {
		t.Fatal("Is should find the code through the chain")
	}
}

func TestEnvelopeJSONIsDeterministic(t *testing.T) {
	e := errs.Newf("serve.conflict", "job already running").
		AddContext("job", 1).
		AddContext("kind", "opt")
	b1, err := json.Marshal(errs.ToEnvelope(e))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(errs.ToEnvelope(e))
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("envelope encoding not deterministic: %s vs %s", b1, b2)
	}
	want := `{"code":"serve.conflict","message":"job already running","context":{"job":"1","kind":"opt"}}`
	if string(b1) != want {
		t.Fatalf("envelope = %s, want %s", b1, want)
	}
}

func TestEnvelopeOfPlainAndNil(t *testing.T) {
	env := errs.ToEnvelope(errors.New("boom"))
	if env.Code != errs.CodeInternal || env.Message != "boom" {
		t.Fatalf("plain envelope = %+v", env)
	}
	env = errs.ToEnvelope(nil)
	if env.Code != errs.CodeInternal || env.Message != "" {
		t.Fatalf("nil envelope = %+v", env)
	}
}

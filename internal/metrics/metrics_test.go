package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty series not all-zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%f", s.N(), s.Mean())
	}
	// Sample std of this classic set is ~2.138.
	if math.Abs(s.Std()-2.13809) > 1e-4 {
		t.Fatalf("std = %f", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min=%f max=%f", s.Min(), s.Max())
	}
}

func TestPropSeriesMeanWithinBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // avoid float overflow in the sum, not a Series bug
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "col1", "longer-column")
	tbl.AddRow("a", 3.14159)
	tbl.AddRow("bbbb", 2)
	tbl.AddNote("note %d", 42)
	out := tbl.String()
	for _, want := range []string{"Title", "col1", "longer-column", "3.14", "bbbb", "note 42", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Header and separator align.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header/separator width mismatch:\n%s", out)
	}
}

func TestDeltaPct(t *testing.T) {
	if d := DeltaPct(110, 100); math.Abs(d-10) > 1e-9 {
		t.Fatalf("DeltaPct = %f", d)
	}
	if d := DeltaPct(90, 100); math.Abs(d+10) > 1e-9 {
		t.Fatalf("DeltaPct = %f", d)
	}
	if DeltaPct(5, 0) != 0 {
		t.Fatal("zero reference should yield 0")
	}
}

package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty series not all-zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%f", s.N(), s.Mean())
	}
	// Sample std of this classic set is ~2.138.
	if math.Abs(s.Std()-2.13809) > 1e-4 {
		t.Fatalf("std = %f", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min=%f max=%f", s.Min(), s.Max())
	}
}

func TestSeriesPercentile(t *testing.T) {
	var empty Series
	if empty.Percentile(50) != 0 {
		t.Fatal("empty series percentile should be 0")
	}
	var s Series
	// Added out of order: Percentile must sort a copy.
	for _, v := range []float64{40, 10, 30, 20} {
		s.Add(v)
	}
	cases := []struct{ p, want float64 }{
		{-5, 10}, {0, 10}, {25, 17.5}, {50, 25}, {75, 32.5}, {100, 40}, {120, 40},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Percentile must not reorder the underlying values.
	if s.values[0] != 40 {
		t.Fatal("Percentile mutated the series")
	}
	var one Series
	one.Add(7)
	if one.Percentile(95) != 7 {
		t.Fatalf("single-value p95 = %v", one.Percentile(95))
	}
}

func TestSeriesStddevAlias(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Stddev() != s.Std() {
		t.Fatalf("Stddev %v != Std %v", s.Stddev(), s.Std())
	}
	var short Series
	short.Add(3)
	if short.Stddev() != 0 {
		t.Fatal("n<2 stddev should be 0")
	}
}

func TestPropSeriesPercentileWithinBounds(t *testing.T) {
	f := func(vals []float64, p float64) bool {
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		q := s.Percentile(math.Mod(math.Abs(p), 100))
		return q >= s.Min()-1e-9 && q <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSeriesMeanWithinBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // avoid float overflow in the sum, not a Series bug
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "col1", "longer-column")
	tbl.AddRow("a", 3.14159)
	tbl.AddRow("bbbb", 2)
	tbl.AddNote("note %d", 42)
	out := tbl.String()
	for _, want := range []string{"Title", "col1", "longer-column", "3.14", "bbbb", "note 42", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Header and separator align.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header/separator width mismatch:\n%s", out)
	}
}

func TestDeltaPct(t *testing.T) {
	if d := DeltaPct(110, 100); math.Abs(d-10) > 1e-9 {
		t.Fatalf("DeltaPct = %f", d)
	}
	if d := DeltaPct(90, 100); math.Abs(d+10) > 1e-9 {
		t.Fatalf("DeltaPct = %f", d)
	}
	if DeltaPct(5, 0) != 0 {
		t.Fatal("zero reference should yield 0")
	}
}

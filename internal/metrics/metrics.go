// Package metrics provides the small statistics and table-rendering
// utilities the benchmark harness uses to print paper-versus-measured
// comparisons.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series accumulates scalar observations.
type Series struct {
	values []float64
}

// Add appends an observation.
func (s *Series) Add(v float64) { s.values = append(s.values, v) }

// N returns the observation count.
func (s *Series) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Std returns the sample standard deviation.
func (s *Series) Std() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Stddev returns the sample standard deviation. It is an alias for Std,
// named to match the Percentile/Stddev pair the fault-tolerance reports use.
func (s *Series) Stddev() float64 { return s.Std() }

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks, the same convention as numpy's
// default. An empty series reports 0; p outside [0, 100] is clamped.
func (s *Series) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min and Max return the extremes (0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Values returns a copy of the observations in insertion order.
func (s *Series) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// Summary condenses a series into the fixed quantile set the serving
// reports and the control plane's metrics snapshots use. Percentiles come
// from Percentile, so a summary is reproducible from the raw series.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// Summary computes the series' summary.
func (s *Series) Summary() Summary {
	return Summary{
		N:    s.N(),
		Mean: s.Mean(),
		P50:  s.Percentile(50),
		P95:  s.Percentile(95),
		P99:  s.Percentile(99),
		Max:  s.Max(),
	}
}

// Max returns the largest observation.
func (s *Series) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Table renders fixed-width text tables for the experiment harness.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// DeltaPct returns the relative difference of measured vs reference, in
// percent (positive = measured larger).
func DeltaPct(measured, reference float64) float64 {
	if reference == 0 {
		return 0
	}
	return (measured - reference) / reference * 100
}

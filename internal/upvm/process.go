package upvm

import (
	"fmt"

	"pvmigrate/internal/cluster"
	"pvmigrate/internal/core"
	"pvmigrate/internal/pvm"
	"pvmigrate/internal/sim"
)

// Process is one UPVM Unix process: the per-host container that holds ULPs,
// runs the library scheduler (run token + context switches), dispatches
// incoming PVM messages to ULP inboxes, and executes the migration
// protocol.
type Process struct {
	sys  *System
	host int
	task *pvm.Task

	ulps map[int]*ULP

	// locator is this process's view of where every ULP lives; updated by
	// flush messages the moment a migration starts (future messages go
	// straight to the new host).
	locator map[int]int

	// pending buffers messages for ULPs announced as moving here but not
	// yet arrived.
	pending map[int][]*UMessage

	// The non-preemptive run token: at most one local ULP executes at a
	// time (a process is one Unix job to the host scheduler).
	holder  *ULP
	lastRun *ULP
	tokenCh *sim.Cond

	// in-progress inbound ULP transfers, by ulp id.
	inbound map[int]*inboundXfer

	// flush bookkeeping for migrations this process initiated.
	flushWait map[int]*flushState
	// flushSeq numbers flush barriers started by this process.
	flushSeq int
	// ackWait holds the accept-ack waits of in-flight state transfers this
	// process initiated (want is always 1: the destination's confirmation).
	ackWait map[int]*flushState
}

type flushState struct {
	want, have int
	// seq identifies this barrier generation: an ack carrying a stale seq
	// (from a barrier that already timed out and aborted) must not be
	// counted toward a later barrier for the same ULP.
	seq  int
	cond *sim.Cond
}

type inboundXfer struct {
	total, got int
	// seq is the sending migration's barrier generation, echoed in the
	// accept ack so the source matches it to the right transfer.
	seq       int
	inboxMsgs []*UMessage
	rec       core.MigrationRecord
}

// UMessage is a ULP-to-ULP message.
type UMessage struct {
	Src, Dst core.TID // ULP tids
	Tag      int
	Buf      *core.Buffer
	SentAt   sim.Time
	Local    bool // delivered by hand-off
}

func newProcess(s *System, host int, name string) (*Process, error) {
	p := &Process{
		sys:       s,
		host:      host,
		ulps:      make(map[int]*ULP),
		locator:   make(map[int]int),
		pending:   make(map[int][]*UMessage),
		inbound:   make(map[int]*inboundXfer),
		flushWait: make(map[int]*flushState),
		ackWait:   make(map[int]*flushState),
	}
	p.tokenCh = sim.NewCond(s.m.Kernel())
	task, err := s.m.Spawn(host, fmt.Sprintf("%s-upvm", name), p.dispatch)
	if err != nil {
		return nil, err
	}
	p.task = task
	return p, nil
}

// Host returns the workstation the process runs on.
func (p *Process) Host() *cluster.Host { return p.task.Host() }

// Task returns the underlying PVM task.
func (p *Process) Task() *pvm.Task { return p.task }

// NumULPs returns the number of ULPs currently resident.
func (p *Process) NumULPs() int { return len(p.ulps) }

func (p *Process) addULP(u *ULP) {
	p.ulps[u.id] = u
	u.p = p
	// Initial placement is known globally: the SPMD loader distributes
	// ULPs before the application runs.
	for h := range p.sys.procs {
		p.sys.procs[h].locator[u.id] = p.host
	}
	p.sys.notePlaced(u.id, p.host)
}

// locate returns the host this process believes the ULP is on.
func (p *Process) locate(ulpID int) (int, bool) {
	h, ok := p.locator[ulpID]
	return h, ok
}

// --- run token ---------------------------------------------------------------

// acquire gives u the run token, blocking until it is free. A context
// switch (register save/restore) is charged when the token changes hands.
func (p *Process) acquire(u *ULP) error {
	for p.holder != nil && p.holder != u {
		if err := p.tokenCh.Wait(u.proc); err != nil {
			return err
		}
	}
	if p.holder == u {
		return nil
	}
	p.holder = u
	if p.lastRun != u {
		p.lastRun = u
		p.sys.m.ChargeCPU(u.proc, p.Host(), p.sys.cfg.CtxSwitch)
	}
	return nil
}

// release frees the run token if u holds it.
func (p *Process) release(u *ULP) {
	if p.holder == u {
		p.holder = nil
		p.tokenCh.Signal()
	}
}

// --- message dispatch ----------------------------------------------------------

// dispatch is the process's PVM receive loop: the UPVM library's
// asynchronous message handling, routing wrapped application messages to
// ULP inboxes and handling protocol messages.
func (p *Process) dispatch(t *pvm.Task) {
	for {
		_, tag, r, err := t.Recv(core.AnyTID, core.AnyTag)
		if err != nil {
			return
		}
		switch tag {
		case tagData:
			p.onData(r)
		case tagCtl:
			p.onCtl(t, r)
		case tagXfer:
			p.onXfer(t, r)
		default:
			// Not a UPVM message: ignore.
		}
	}
}

// onData unwraps a remote application message and delivers it.
func (p *Process) onData(r *core.Reader) {
	srcID, err1 := r.UpkInt()
	dstID, err2 := r.UpkInt()
	appTag, err3 := r.UpkInt()
	_, err4 := r.UpkVirtual() // the UPVM routing header
	inner, err5 := r.UpkBuffer()
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
		return
	}
	msg := &UMessage{
		Src: ULPTID(srcID), Dst: ULPTID(dstID), Tag: appTag,
		Buf: inner, SentAt: p.sys.m.Kernel().Now(),
	}
	p.deliverLocal(dstID, msg)
}

// deliverLocal places a message in a resident ULP's inbox, buffers it for a
// ULP that is on its way here, or forwards it if the ULP lives elsewhere.
func (p *Process) deliverLocal(dstID int, msg *UMessage) {
	if u, ok := p.ulps[dstID]; ok {
		u.deliver(msg)
		return
	}
	if h, ok := p.locator[dstID]; ok && h == p.host {
		// Announced as migrating to this host but not arrived: hold.
		p.pending[dstID] = append(p.pending[dstID], msg)
		return
	}
	// Stale delivery: forward to where we believe it lives now.
	p.forward(dstID, msg)
}

func (p *Process) forward(dstID int, msg *UMessage) {
	h, ok := p.locator[dstID]
	if !ok || h == p.host {
		// Unknown or believed-local-but-missing: buffer defensively.
		p.pending[dstID] = append(p.pending[dstID], msg)
		return
	}
	dst := p.sys.procs[h]
	srcID, _ := ULPFromTID(msg.Src)
	wrapped := core.NewBuffer().
		PkInt(srcID).PkInt(dstID).PkInt(msg.Tag).
		PkVirtual(p.sys.cfg.RemoteHeaderBytes).
		PkBuffer(msg.Buf)
	if err := p.task.Send(dst.task.Mytid(), tagData, wrapped); err != nil {
		// Remote process unreachable: hold the message like any other
		// not-yet-routable delivery instead of dropping it silently.
		p.pending[dstID] = append(p.pending[dstID], msg)
	}
}

// drainPending moves held messages into a newly arrived ULP's inbox.
func (p *Process) drainPending(u *ULP) {
	for _, msg := range p.pending[u.id] {
		u.deliver(msg)
	}
	delete(p.pending, u.id)
}

package upvm

import (
	"fmt"

	"pvmigrate/internal/cluster"
	"pvmigrate/internal/core"
	"pvmigrate/internal/sim"
)

// ULP is a User Level Process: the paper's light-weight, independently
// migratable virtual processor. ULP implements core.VP, so application code
// written for PVM tasks runs on ULPs unchanged (the paper's source-code
// compatible interface).
type ULP struct {
	sys    *System
	id     int
	spec   ULPSpec
	p      *Process // current containing process
	proc   *sim.Proc
	region Region

	inbox     []*UMessage
	inboxCond *sim.Cond

	migrating  bool
	parked     bool // suspended for migration (state capture may proceed)
	parkCond   *sim.Cond
	resumeCond *sim.Cond
	done       bool

	// stats
	localMsgs, remoteMsgs int
}

var _ core.VP = (*ULP)(nil)

// migPause is the interrupt reason used to park a ULP during migration.
type migPause struct{}

func newULP(s *System, rank int, spec ULPSpec, body func(*ULP, int)) *ULP {
	u := &ULP{
		sys:        s,
		id:         rank,
		spec:       spec,
		inboxCond:  sim.NewCond(s.m.Kernel()),
		parkCond:   sim.NewCond(s.m.Kernel()),
		resumeCond: sim.NewCond(s.m.Kernel()),
	}
	region, err := s.space.Reserve(rank, spec.StateBytes())
	if err != nil {
		panic(fmt.Sprintf("upvm: %v", err))
	}
	u.region = region
	u.proc = s.m.Kernel().Spawn(fmt.Sprintf("ulp%d", rank), func(p *sim.Proc) {
		body(u, rank)
		u.done = true
		s.notePlaced(u.id, -1)
		u.parkCond.Broadcast() // unblock a migrator waiting for the park
		if u.p != nil {
			u.p.release(u)
		}
	})
	return u
}

// --- identity ------------------------------------------------------------------

// Mytid returns the ULP's stable tid (never changes, even across
// migrations — in UPVM the tid names the ULP itself).
func (u *ULP) Mytid() core.TID { return ULPTID(u.id) }

// ID returns the ULP's rank.
func (u *ULP) ID() int { return u.id }

// Proc returns the ULP's thread of control.
func (u *ULP) Proc() *sim.Proc { return u.proc }

// Host returns the workstation the ULP currently executes on.
func (u *ULP) Host() *cluster.Host { return u.p.Host() }

// Process returns the containing UPVM process.
func (u *ULP) Process() *Process { return u.p }

// Region returns the ULP's globally unique virtual address region.
func (u *ULP) Region() Region { return u.region }

// StateBytes returns the ULP's migratable segment size plus queued message
// bytes.
func (u *ULP) StateBytes() int {
	n := u.spec.StateBytes()
	for _, m := range u.inbox {
		n += m.Buf.Bytes()
	}
	return n
}

// Done reports whether the ULP's body has returned.
func (u *ULP) Done() bool { return u.done }

// Migrating reports whether the ULP is mid-migration.
func (u *ULP) Migrating() bool { return u.migrating }

// Stats returns counts of local (hand-off) and remote messages received.
func (u *ULP) Stats() (local, remote int) { return u.localMsgs, u.remoteMsgs }

// --- pause/park ------------------------------------------------------------------

// checkPause handles an interrupt: migration pauses park the ULP until the
// transfer completes and then resume transparently (returning nil); any
// other interrupt surfaces to the caller.
func (u *ULP) checkPause(err error) error {
	ie, ok := sim.IsInterrupted(err)
	if !ok {
		return err
	}
	if _, isPause := ie.Reason.(migPause); !isPause {
		return err
	}
	u.waitResume()
	return nil
}

func (u *ULP) waitResume() {
	u.proc.MaskInterrupts()
	defer u.proc.UnmaskInterrupts()
	// The ULP is now suspended: its context is capturable. Tell the
	// migrator, which waits for this before snapshotting state.
	u.parked = true
	u.parkCond.Broadcast()
	for u.migrating {
		u.resumeCond.Wait(u.proc)
	}
	u.parked = false
}

// --- messaging -------------------------------------------------------------------

// deliver appends a message to the inbox (library context).
func (u *ULP) deliver(msg *UMessage) {
	u.inbox = append(u.inbox, msg)
	if msg.Local {
		u.localMsgs++
	} else {
		u.remoteMsgs++
	}
	u.inboxCond.Broadcast()
}

// InboxLen returns queued message count.
func (u *ULP) InboxLen() int { return len(u.inbox) }

// Send delivers buf to the ULP named dst. Same-process destinations get the
// zero-copy hand-off; remote destinations are wrapped with the UPVM routing
// header and ride the process's PVM channel.
func (u *ULP) Send(dst core.TID, tag int, buf *core.Buffer) error {
	for {
		if err := u.p.acquire(u); err != nil {
			if err = u.checkPause(err); err != nil {
				return err
			}
			continue
		}
		break
	}
	dstID, ok := ULPFromTID(dst)
	if !ok {
		return fmt.Errorf("%w: %v is not a ULP tid", ErrUnknownULP, dst)
	}
	if _, exists := u.sys.ulps[dstID]; !exists {
		return fmt.Errorf("%w: %d", ErrUnknownULP, dstID)
	}
	p := u.p
	if local, isHere := p.ulps[dstID]; isHere {
		// Buffer hand-off: the library passes the message buffer straight
		// to the destination ULP — no copy (paper §4.2.1).
		u.sys.m.ChargeCPU(u.proc, p.Host(), u.sys.cfg.HandoffCost)
		local.deliver(&UMessage{
			Src: u.Mytid(), Dst: dst, Tag: tag, Buf: buf,
			SentAt: u.proc.Now(), Local: true,
		})
		return nil
	}
	h, ok := p.locate(dstID)
	if !ok {
		return fmt.Errorf("%w: %d (no location)", ErrUnknownULP, dstID)
	}
	dstProc := u.sys.procs[h]
	wrapped := core.NewBuffer().
		PkInt(u.id).PkInt(dstID).PkInt(tag).
		PkVirtual(u.sys.cfg.RemoteHeaderBytes).
		PkBuffer(buf)
	return p.task.SendAs(u.proc, dstProc.task.Mytid(), tagData, wrapped)
}

// Recv blocks until a message matching src and tag is in the ULP's inbox.
// While blocked, the ULP is descheduled: it releases the run token so
// another runnable ULP of the same process executes (the paper's library
// scheduling). Receive entry is also the code-segment boundary at which a
// BoundaryOnly migration captures the ULP.
func (u *ULP) Recv(src core.TID, tag int) (core.TID, int, *core.Reader, error) {
	if u.migrating {
		u.p.release(u)
		u.waitResume()
	}
	for {
		if err := u.p.acquire(u); err != nil {
			if err = u.checkPause(err); err != nil {
				return core.NoTID, 0, nil, err
			}
			continue
		}
		for i, msg := range u.inbox {
			if (src == core.AnyTID || msg.Src == src) && (tag == core.AnyTag || msg.Tag == tag) {
				u.inbox = append(u.inbox[:i], u.inbox[i+1:]...)
				return msg.Src, msg.Tag, msg.Buf.Reader(), nil
			}
		}
		u.p.release(u) // deschedule while blocked on receive
		err := u.inboxCond.Wait(u.proc)
		if err != nil {
			if err = u.checkPause(err); err != nil {
				return core.NoTID, 0, nil, err
			}
		}
	}
}

// NRecv is the non-blocking receive.
func (u *ULP) NRecv(src core.TID, tag int) (core.TID, int, *core.Reader, bool, error) {
	if err := u.p.acquire(u); err != nil {
		if err = u.checkPause(err); err != nil {
			return core.NoTID, 0, nil, false, err
		}
	}
	for i, msg := range u.inbox {
		if (src == core.AnyTID || msg.Src == src) && (tag == core.AnyTag || msg.Tag == tag) {
			u.inbox = append(u.inbox[:i], u.inbox[i+1:]...)
			return msg.Src, msg.Tag, msg.Buf.Reader(), true, nil
		}
	}
	return core.NoTID, 0, nil, false, nil
}

// Compute burns application work on the current host. Non-preemptive: the
// ULP keeps the run token for the whole burst unless a migration pauses it,
// in which case the remaining work resumes on the destination host.
func (u *ULP) Compute(flops float64) error {
	remaining := flops
	for remaining > 0 {
		if err := u.p.acquire(u); err != nil {
			if err = u.checkPause(err); err != nil {
				return err
			}
			continue
		}
		rem, err := u.p.Host().CPU().Compute(u.proc, remaining)
		if err == nil {
			return nil
		}
		remaining = rem
		u.p.release(u)
		if err = u.checkPause(err); err != nil {
			return err
		}
	}
	return nil
}

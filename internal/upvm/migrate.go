package upvm

import (
	"fmt"

	"pvmigrate/internal/core"
	"pvmigrate/internal/pvm"
	"pvmigrate/internal/sim"
)

// Migrate orders ULP ulpID moved to the dest host (paper §2.2, Figure 3).
// The command travels as a message addressed directly to the process
// containing the ULP, which is how the UPVM GS initiates migrations.
func (s *System) Migrate(ulpID, dest int, reason core.MigrationReason) error {
	u, ok := s.ulps[ulpID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownULP, ulpID)
	}
	if u.migrating {
		return fmt.Errorf("%w: %d", ErrMoving, ulpID)
	}
	if dest < 0 || dest >= len(s.procs) {
		return fmt.Errorf("upvm: no host %d", dest)
	}
	srcProc := u.p
	if srcProc.host == dest {
		return fmt.Errorf("%w: ulp %d on host %d", ErrSameHost, ulpID, dest)
	}
	if !srcProc.Host().MigrationCompatible(s.procs[dest].Host()) {
		return fmt.Errorf("%w: %s → %s", ErrIncompatible,
			srcProc.Host().Arch(), s.procs[dest].Host().Arch())
	}
	s.trace("GS", "1:migration-event", fmt.Sprintf("migrate ULP%d to host%d (%s)", ulpID, dest, reason))
	buf := core.NewBuffer().PkString("migrate").PkInt(ulpID).PkInt(dest).PkString(string(reason))
	msg := &pvm.Message{
		Src: core.DaemonTID(srcProc.host), Dst: srcProc.task.Mytid(),
		Tag: tagCtl, Buf: buf, SentAt: s.m.Kernel().Now(),
	}
	h := srcProc.Host()
	h.Iface().SendDgram(1, h.ID(), 1, msg.WireBytes(), msg)
	return nil
}

// onCtl handles UPVM protocol control messages at the dispatcher.
func (p *Process) onCtl(t *pvm.Task, r *core.Reader) {
	op, err := r.UpkString()
	if err != nil {
		return
	}
	switch op {
	case "migrate":
		ulpID, _ := r.UpkInt()
		dest, _ := r.UpkInt()
		reason, _ := r.UpkString()
		p.startMigration(ulpID, dest, core.MigrationReason(reason))
	case "flush":
		ulpID, _ := r.UpkInt()
		dest, _ := r.UpkInt()
		srcHost, _ := r.UpkInt()
		seq, _ := r.UpkInt()
		// Future messages for this ULP go straight to the new host —
		// UPVM's contrast with MPVM's sender blocking.
		p.locator[ulpID] = dest
		if dest != p.host {
			// The ULP is headed elsewhere (including an abort revert
			// pointing back at the source): anything held here for it
			// follows the new location instead of rotting in pending.
			if msgs := p.pending[ulpID]; len(msgs) > 0 {
				delete(p.pending, ulpID)
				for _, msg := range msgs {
					p.forward(ulpID, msg)
				}
			}
		}
		ack := core.NewBuffer().PkString("flush-ack").PkInt(ulpID).PkInt(seq)
		if err := p.task.Send(p.sys.procs[srcHost].task.Mytid(), tagCtl, ack); err != nil {
			return // source process gone: the migration it was running died with it
		}
	case "flush-ack":
		ulpID, _ := r.UpkInt()
		seq, _ := r.UpkInt()
		if fs, ok := p.flushWait[ulpID]; ok && fs.seq == seq {
			fs.have++
			fs.cond.Broadcast()
		}
	case "accepted":
		ulpID, _ := r.UpkInt()
		seq, _ := r.UpkInt()
		if as, ok := p.ackWait[ulpID]; ok && as.seq == seq {
			as.have++
			as.cond.Broadcast()
		}
	case "arrived":
		// The placement marker has drained the dispatcher queue: every
		// message that arrived before the ULP was accepted has been
		// processed (and parked in pending), so the ULP can become visible
		// to the zero-copy hand-off path without reordering.
		ulpID, _ := r.UpkInt()
		u, ok := p.sys.ulps[ulpID]
		if !ok || u.p != p {
			return
		}
		p.ulps[ulpID] = u
		p.drainPending(u)
	}
}

// startMigration launches the library's migration helper; the dispatcher
// keeps processing messages (it must see the flush acks).
func (p *Process) startMigration(ulpID, dest int, reason core.MigrationReason) {
	u, ok := p.ulps[ulpID]
	if !ok {
		return
	}
	start := p.sys.m.Kernel().Now()
	p.sys.m.Kernel().Spawn(fmt.Sprintf("upvm-mig(%d)", ulpID), func(mp *sim.Proc) {
		p.runMigration(mp, u, dest, reason, start)
	})
}

// runMigration executes the four stages from the source side.
func (p *Process) runMigration(mp *sim.Proc, u *ULP, dest int, reason core.MigrationReason, start sim.Time) {
	cfg := p.sys.cfg
	destProc := p.sys.procs[dest]

	// Stage 1: capture. The ULP is interrupted and parks at its next
	// blocking point; it is removed from the local table at once so no new
	// local deliveries reach it.
	u.migrating = true
	delete(p.ulps, u.id)
	p.locator[u.id] = dest
	if !cfg.BoundaryOnly {
		// Asynchronous capture: interrupt the ULP wherever it is.
		u.proc.Interrupt(migPause{})
	}
	// Under BoundaryOnly the ULP parks by itself at its next receive.
	p.sys.trace(fmt.Sprintf("proc%d", p.host), "1:context-captured", fmt.Sprintf("ULP%d suspended", u.id))

	// Stage 2: flush. Every other process updates its locator (future
	// messages go to the new host) and acknowledges that in-transit
	// messages for this ULP have drained.
	p.flushSeq++
	fs := &flushState{want: len(p.sys.procs) - 1, seq: p.flushSeq, cond: sim.NewCond(p.sys.m.Kernel())}
	p.flushWait[u.id] = fs
	for h, other := range p.sys.procs {
		if h == p.host {
			continue
		}
		buf := core.NewBuffer().PkString("flush").PkInt(u.id).PkInt(dest).PkInt(p.host).PkInt(fs.seq)
		if err := p.task.SendAs(mp, other.task.Mytid(), tagCtl, buf); err != nil {
			// A dead peer holds no in-transit messages to drain; its ack
			// will never come, so it leaves the barrier.
			fs.want--
		}
	}
	p.sys.trace(fmt.Sprintf("proc%d", p.host), "2:flush", "flush to all processes; new location published")
	// A live-but-partitioned peer fails the barrier differently from a
	// dead one: the flush datagram is dropped silently, the send above
	// succeeds, and the ack never comes. The wait is therefore bounded;
	// on expiry the migration aborts and the captured ULP reverts to the
	// source rather than being lost to a wedged barrier.
	deadline := mp.Now() + cfg.FlushTimeout
	wake := p.sys.m.Kernel().ScheduleAt(deadline, fs.cond.Broadcast)
	for fs.have < fs.want {
		if mp.Now() >= deadline {
			p.abortFlush(mp, u, fs)
			return
		}
		if err := fs.cond.Wait(mp); err != nil {
			return
		}
	}
	wake.Cancel()
	delete(p.flushWait, u.id)
	p.sys.trace(fmt.Sprintf("proc%d", p.host), "2:flush-complete", "in-transit messages drained")

	// Wait until the ULP is actually suspended (it parks at its next
	// blocking point): capturing its state while it runs would tear the
	// inbox and register context.
	for !u.parked && !u.done {
		if err := u.parkCond.Wait(mp); err != nil {
			return
		}
	}
	if u.done {
		// The ULP finished before it could be captured: abandon the
		// migration; there is no state left to move.
		u.migrating = false
		return
	}

	// Stage 3: state transfer via the pvm_pkbyte/pvm_send sequence. The
	// fitted XferBps models the prototype's extra copies and per-send
	// overhead. Unreceived messages are collected and sent in a separate
	// operation (paper §4.2.2).
	//
	// The barrier passed, so every peer was reachable moments ago — but a
	// partition can still open mid-transfer and silently swallow chunks,
	// the fin, or the destination's accept ack. The transfer is therefore
	// at-least-once: the source retransmits until the destination confirms
	// acceptance (which is idempotent — exactly one accept, exactly one
	// record), so a partition that heals can only delay a hand-off, never
	// strand the captured ULP in limbo.
	inbox := u.inbox
	u.inbox = nil
	segBytes := u.spec.StateBytes()
	as := &flushState{want: 1, seq: fs.seq, cond: sim.NewCond(p.sys.m.Kernel())}
	p.ackWait[u.id] = as
	ackTimeout := sim.FromSeconds(float64(segBytes)/cfg.AcceptBps) + 2*cfg.FlushTimeout
	for attempt := 0; as.have < as.want; attempt++ {
		if attempt > 0 {
			p.sys.trace(fmt.Sprintf("proc%d", p.host), "3:retransmit",
				fmt.Sprintf("no accept ack for ULP%d; resending state", u.id))
		}
		if err := p.sendState(mp, destProc, u, inbox, segBytes, reason, start, fs.seq); err != nil {
			delete(p.ackWait, u.id)
			return // destination gone: abandon, like an interrupted transfer
		}
		if attempt == 0 {
			p.sys.trace(fmt.Sprintf("proc%d", p.host), "3:off-source", fmt.Sprintf("ULP%d state off-loaded (pkbyte/send)", u.id))
			// All ULP state is off the source host: the obtrusiveness
			// window ends here, even though the destination may not have
			// received everything (paper §4.2.2).
		}
		deadline := mp.Now() + ackTimeout
		wake := p.sys.m.Kernel().ScheduleAt(deadline, as.cond.Broadcast)
		for as.have < as.want && mp.Now() < deadline {
			if err := as.cond.Wait(mp); err != nil {
				return
			}
		}
		wake.Cancel()
	}
	delete(p.ackWait, u.id)
}

// sendState streams one full copy of the ULP's state — header, segment
// chunks, unreceived inbox messages, fin — to the destination.
func (p *Process) sendState(mp *sim.Proc, destProc *Process, u *ULP, inbox []*UMessage,
	segBytes int, reason core.MigrationReason, start sim.Time, seq int) error {
	cfg := p.sys.cfg
	hdr := core.NewBuffer().PkString("hdr").PkInt(u.id).PkInt(segBytes).
		PkInt(len(inbox)).PkString(string(reason)).
		PkInt(int(start)).PkInt(p.host).PkInt(seq)
	if err := p.task.SendAs(mp, destProc.task.Mytid(), tagXfer, hdr); err != nil {
		return err
	}
	remaining := segBytes
	for remaining > 0 {
		chunk := remaining
		if chunk > cfg.XferChunk {
			chunk = cfg.XferChunk
		}
		if err := mp.Sleep(sim.FromSeconds(float64(chunk) / cfg.XferBps)); err != nil {
			return err
		}
		buf := core.NewBuffer().PkString("chunk").PkInt(u.id).PkVirtual(chunk)
		if err := p.task.SendAs(mp, destProc.task.Mytid(), tagXfer, buf); err != nil {
			return err
		}
		remaining -= chunk
	}
	for _, msg := range inbox {
		if err := mp.Sleep(sim.FromSeconds(float64(msg.Buf.Bytes()) / cfg.XferBps)); err != nil {
			return err
		}
		srcID, _ := ULPFromTID(msg.Src)
		buf := core.NewBuffer().PkString("inboxmsg").PkInt(u.id).
			PkInt(srcID).PkInt(msg.Tag).PkBuffer(msg.Buf)
		if err := p.task.SendAs(mp, destProc.task.Mytid(), tagXfer, buf); err != nil {
			return err
		}
	}
	fin := core.NewBuffer().PkString("fin").PkInt(u.id).PkInt(int(mp.Now()))
	return p.task.SendAs(mp, destProc.task.Mytid(), tagXfer, fin)
}

// abortFlush reverts a captured ULP after the flush barrier times out.
// The ULP rejoins the source process's table and resumes where it parked;
// the location published in stage 1 is retracted by a second flush round
// pointing back at the source (peers that heard the original re-point and
// re-forward anything they buffered for the ULP). Acks from either round
// can still arrive after the abort — the deleted flushWait entry and the
// barrier seq make them inert. Messages dropped by the partition itself
// are the application's to handle, like any lost datagram; what the abort
// guarantees is that the ULP is never lost to a wedged barrier.
func (p *Process) abortFlush(mp *sim.Proc, u *ULP, fs *flushState) {
	delete(p.flushWait, u.id)
	p.locator[u.id] = p.host
	for h, other := range p.sys.procs {
		if h == p.host {
			continue
		}
		buf := core.NewBuffer().PkString("flush").PkInt(u.id).PkInt(p.host).PkInt(p.host).PkInt(fs.seq)
		// Best effort: a peer that misses the retraction keeps routing
		// via the stale location, and the re-pointed destination forwards
		// those strays back here.
		_ = p.task.SendAs(mp, other.task.Mytid(), tagCtl, buf) // lint:reason best-effort retraction: an unreachable peer self-corrects via the destination's forwarding
	}
	p.sys.trace(fmt.Sprintf("proc%d", p.host), "2:flush-abort",
		fmt.Sprintf("flush barrier timed out (%d/%d acks); ULP%d reverted", fs.have, fs.want, u.id))
	if u.done {
		u.migrating = false
		return
	}
	p.ulps[u.id] = u
	p.drainPending(u)
	u.migrating = false
	u.resumeCond.Broadcast()
	u.inboxCond.Broadcast()
}

// onXfer assembles an inbound ULP at the destination dispatcher.
func (p *Process) onXfer(t *pvm.Task, r *core.Reader) {
	op, err := r.UpkString()
	if err != nil {
		return
	}
	switch op {
	case "hdr":
		ulpID, _ := r.UpkInt()
		segBytes, _ := r.UpkInt()
		nInbox, _ := r.UpkInt()
		reason, _ := r.UpkString()
		startNs, _ := r.UpkInt()
		srcHost, _ := r.UpkInt()
		seq, _ := r.UpkInt()
		if u := p.sys.ulps[ulpID]; u != nil && u.p == p && !u.migrating {
			// A retransmission for a ULP already accepted here: the accept
			// ack was lost. Re-ack and discard the duplicate stream.
			p.sendAccepted(ulpID, srcHost, seq)
			return
		}
		// A fresh header restarts any partial inbound from a lost attempt.
		p.inbound[ulpID] = &inboundXfer{
			total: segBytes,
			seq:   seq,
			rec: core.MigrationRecord{
				VP:         ULPTID(ulpID),
				NewTID:     ULPTID(ulpID),
				From:       srcHost,
				To:         p.host,
				Reason:     core.MigrationReason(reason),
				Start:      sim.Time(startNs),
				StateBytes: segBytes,
			},
		}
		_ = nInbox
	case "chunk":
		ulpID, _ := r.UpkInt()
		n, _ := r.UpkVirtual()
		if ix, ok := p.inbound[ulpID]; ok {
			ix.got += n
		}
	case "inboxmsg":
		ulpID, _ := r.UpkInt()
		srcID, _ := r.UpkInt()
		tag, _ := r.UpkInt()
		inner, _ := r.UpkBuffer()
		if ix, ok := p.inbound[ulpID]; ok {
			ix.inboxMsgs = append(ix.inboxMsgs, &UMessage{
				Src: ULPTID(srcID), Dst: ULPTID(ulpID), Tag: tag, Buf: inner,
				SentAt: p.sys.m.Kernel().Now(),
			})
			ix.rec.StateBytes += inner.Bytes()
		}
	case "fin":
		ulpID, _ := r.UpkInt()
		offNs, _ := r.UpkInt()
		ix, ok := p.inbound[ulpID]
		if !ok {
			return
		}
		delete(p.inbound, ulpID)
		ix.rec.OffSource = sim.Time(offNs)
		p.acceptULP(t, ulpID, ix)
	}
}

// acceptULP runs the destination-side accept mechanism: placing the ULP's
// segments into its reserved region and re-linking library structures. The
// paper measured this prototype step as surprisingly slow (6.88 s migration
// vs 1.67 s obtrusiveness for 0.6 MB); AcceptBps preserves that behaviour.
func (p *Process) acceptULP(t *pvm.Task, ulpID int, ix *inboundXfer) {
	u := p.sys.ulps[ulpID]
	if u == nil {
		return
	}
	if !u.migrating && u.p == p {
		// A duplicate fin: an earlier attempt's accept already committed.
		// Accept exactly once — and exactly one record — just re-ack.
		p.sendAccepted(ulpID, ix.rec.From, ix.seq)
		return
	}
	cost := sim.FromSeconds(float64(ix.total) / p.sys.cfg.AcceptBps)
	if err := t.Proc().Sleep(cost); err != nil {
		return
	}
	if !u.migrating && u.p == p {
		// Another attempt's accept committed while this one slept.
		p.sendAccepted(ulpID, ix.rec.From, ix.seq)
		return
	}
	u.p = p
	p.locator[ulpID] = p.host
	p.sys.notePlaced(ulpID, p.host)
	u.inbox = append(u.inbox, ix.inboxMsgs...)
	// The ULP is NOT yet visible to the same-process hand-off fast path:
	// messages already queued at this process's PVM inbox must be
	// dispatched first or a fresh hand-off would overtake them. A loopback
	// marker ("arrived") queued behind them finalizes the placement.
	marker := core.NewBuffer().PkString("arrived").PkInt(ulpID)
	msg := &pvm.Message{
		Src: p.task.Mytid(), Dst: p.task.Mytid(), Tag: tagCtl,
		Buf: marker, SentAt: p.sys.m.Kernel().Now(),
	}
	h := p.Host()
	h.Iface().SendDgram(1, h.ID(), 1, msg.WireBytes(), msg)
	u.migrating = false
	u.resumeCond.Broadcast()
	u.inboxCond.Broadcast()
	// The ULP is on the destination scheduler's run queue: migration ends.
	p.sys.trace(fmt.Sprintf("proc%d", p.host), "4:enqueued", fmt.Sprintf("ULP%d placed in its reserved region and scheduled", ulpID))
	ix.rec.Reintegrated = p.sys.m.Kernel().Now()
	p.sys.records = append(p.sys.records, ix.rec)
	p.sendAccepted(ulpID, ix.rec.From, ix.seq)
}

// sendAccepted confirms a committed (or already-committed) accept to the
// source, ending its retransmission loop.
func (p *Process) sendAccepted(ulpID, srcHost, seq int) {
	buf := core.NewBuffer().PkString("accepted").PkInt(ulpID).PkInt(seq)
	_ = p.task.Send(p.sys.procs[srcHost].task.Mytid(), tagCtl, buf) // lint:reason a lost ack is covered by the source's retransmission loop
}

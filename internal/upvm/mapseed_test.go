package upvm

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pvmigrate/internal/core"
)

// upvmFingerprint runs one fresh UPVM scenario — two senders feeding a
// receiver that migrates mid-stream — and returns the full timestamped
// trace as a fingerprint. Any map-order (or other schedule) nondeterminism
// anywhere on the path shows up as a differing fingerprint, because Go
// reseeds map iteration on every range statement.
func upvmFingerprint(t *testing.T) string {
	t.Helper()
	k, s := testSystem(t, 2)
	var b strings.Builder
	s.SetTracer(func(actor, stage, detail string) {
		fmt.Fprintf(&b, "%v %s %s %s\n", k.Now(), actor, stage, detail)
	})
	_, err := s.Start("app", []ULPSpec{
		{Host: 0, DataBytes: mb(0.3)},  // receiver: migrates 0→1 mid-stream
		{Host: 1, DataBytes: mb(0.05)}, // remote sender
		{Host: 0, DataBytes: mb(0.05)}, // local sender
	}, func(u *ULP, rank int) {
		if rank == 0 {
			for i := 0; i < 6; i++ {
				if _, _, _, err := u.Recv(core.AnyTID, core.AnyTag); err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
			}
			return
		}
		for i := 0; i < 3; i++ {
			if err := u.Send(ULPTID(0), rank, core.NewBuffer().PkInt(i).PkVirtual(5_000)); err != nil {
				t.Errorf("rank %d send %d: %v", rank, i, err)
				return
			}
			u.Proc().Sleep(400 * time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(700*time.Millisecond, func() {
		if err := s.Migrate(0, 1, core.ReasonManual); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	k.Run()
	fp := b.String()
	if fp == "" {
		t.Fatal("no trace emitted")
	}
	if n := len(s.Records()); n != 1 {
		t.Fatalf("migration records = %d, want 1", n)
	}
	return fp
}

// TestScenarioMapSeedDeterminism asserts one UPVM migration scenario
// fingerprints identically across fresh in-process runs — the dynamic
// counterpart to pvmlint's static maporder check.
func TestScenarioMapSeedDeterminism(t *testing.T) {
	first := upvmFingerprint(t)
	for i := 1; i < 6; i++ {
		if got := upvmFingerprint(t); got != first {
			t.Fatalf("run %d fingerprint differs from first:\n--- first ---\n%s\n--- run %d ---\n%s",
				i, first, i, got)
		}
	}
}

// Package upvm implements the paper's UPVM system (§2.2): a virtual
// processor package supporting multi-threading and transparent migration
// through User Level Processes (ULPs).
//
// A ULP is lighter than a Unix process but heavier than a thread: it has a
// register context and stack like a thread, plus private data and heap
// space like a process — but no protection domain. Many ULPs live inside
// each Unix process (one UPVM process per host, SPMD style) and are
// scheduled non-preemptively by the UPVM library: a ULP runs until it
// blocks on a message receive, then another runnable ULP is scheduled.
//
// The address-space manager assigns every ULP a virtual address region that
// is globally unique across all processes of the application, so a migrated
// ULP lands at the same addresses and no pointer fixups are ever needed
// (paper Figure 2).
//
// Messaging: ULPs on the same process communicate by buffer hand-off (the
// library passes the message buffer straight to the destination ULP —
// no copy), which is why Table 3 shows UPVM *beating* plain PVM when
// communicating VPs are co-located. Remote messages ride the process's PVM
// channel with an extra UPVM routing header (marginally slower than MPVM).
//
// Migration follows the paper's four stages: the GS messages the process
// containing the ULP directly; the ULP's context is captured; a flush/ack
// round ensures no in-transit messages; state moves via a pvm_pkbyte/
// pvm_send sequence (with its extra copies — the prototype's measured
// transfer and accept rates are preserved as fitted constants); and the ULP
// is finally placed in its reserved address region and enqueued on the
// destination scheduler.
package upvm

import (
	"errors"
	"fmt"
	"time"

	"pvmigrate/internal/core"
	"pvmigrate/internal/pvm"
	"pvmigrate/internal/sim"
)

// Errors returned by UPVM operations.
var (
	ErrUnknownULP   = errors.New("upvm: unknown ulp")
	ErrSameHost     = errors.New("upvm: ulp already on destination host")
	ErrMoving       = errors.New("upvm: ulp already migrating")
	ErrIncompatible = errors.New("upvm: destination not migration compatible")
	ErrNotSPMD      = errors.New("upvm: system not started")
)

// Reserved tags for the UPVM library's process-level messages.
const (
	tagData = 1 << 20 // application message wrapped with routing header
	tagCtl  = tagData + 1
	tagXfer = tagData + 2
)

// ulpHostNamespace is the pseudo host index used in application-visible
// ULP tids; ULP tids stay stable across migrations, matching the paper
// (tids in UPVM name ULPs, not processes).
const ulpHostNamespace = 62

// ULPTID returns the stable application-visible tid of ULP id.
func ULPTID(id int) core.TID { return core.MakeTID(ulpHostNamespace, id+1) }

// ULPFromTID inverts ULPTID; ok is false for non-ULP tids.
func ULPFromTID(tid core.TID) (int, bool) {
	if tid.Host() != ulpHostNamespace || tid.Local() < 1 {
		return 0, false
	}
	return tid.Local() - 1, true
}

// Config is the UPVM cost model. Zero fields take defaults. The migration
// rates are *fitted to the paper's measured prototype* (Table 4), which the
// authors describe as unoptimized — especially the accept mechanism.
type Config struct {
	// CtxSwitch is a ULP context switch (save/restore registers, switch
	// stacks) in the library scheduler.
	CtxSwitch sim.Time
	// HandoffCost is a local (same-process) message delivery: the library
	// hands the buffer pointer to the destination ULP.
	HandoffCost sim.Time
	// RemoteHeaderBytes is the extra UPVM routing information carried by
	// each remote message (the "marginally slower remote communication").
	RemoteHeaderBytes int
	// XferChunk is the pvm_pkbyte granularity of ULP state transfer.
	XferChunk int
	// XferBps is the effective source-side off-load rate of the prototype's
	// pkbyte/send transfer path (fitted: 0.3 MB off-loaded in ~1.6 s).
	XferBps float64
	// AcceptBps is the destination-side ULP accept/placement rate (fitted:
	// the paper's surprising 6.88 s migration vs 1.67 s obtrusiveness).
	AcceptBps float64
	// CtlBytes sizes protocol control messages.
	CtlBytes int
	// FlushTimeout bounds the stage-2 flush barrier. A crashed peer is
	// detected at send time and leaves the barrier, but a live peer behind
	// a network partition accepts the datagram loss silently: its ack
	// never arrives, and an unbounded wait would wedge the migration
	// forever with the ULP captured — lost to the application. On expiry
	// the migration aborts and the ULP reverts to the source process.
	FlushTimeout sim.Time
	// BoundaryOnly restricts migration points to message-receive
	// boundaries, the Data Parallel C policy the paper contrasts with
	// (§5.0: "VP migration is possible only at the beginning or end of
	// code segments"): a computing ULP is not interrupted; it is captured
	// when it next blocks on a receive. Cheaper to implement, but the
	// response latency grows with the longest compute segment.
	BoundaryOnly bool
}

// DefaultConfig returns the fitted prototype cost model.
func DefaultConfig() Config {
	return Config{
		CtxSwitch:         45 * time.Microsecond,
		HandoffCost:       25 * time.Microsecond,
		RemoteHeaderBytes: 32,
		XferChunk:         32 << 10,
		XferBps:           195e3,
		AcceptBps:         62e3,
		CtlBytes:          64,
		FlushTimeout:      2 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.CtxSwitch == 0 {
		c.CtxSwitch = d.CtxSwitch
	}
	if c.HandoffCost == 0 {
		c.HandoffCost = d.HandoffCost
	}
	if c.RemoteHeaderBytes == 0 {
		c.RemoteHeaderBytes = d.RemoteHeaderBytes
	}
	if c.XferChunk == 0 {
		c.XferChunk = d.XferChunk
	}
	if c.XferBps == 0 {
		c.XferBps = d.XferBps
	}
	if c.AcceptBps == 0 {
		c.AcceptBps = d.AcceptBps
	}
	if c.CtlBytes == 0 {
		c.CtlBytes = d.CtlBytes
	}
	if c.FlushTimeout == 0 {
		c.FlushTimeout = d.FlushTimeout
	}
	return c
}

// System is one UPVM application: one process per host, ULPs spread across
// them.
type System struct {
	m       *pvm.Machine
	cfg     Config
	space   *AddressSpace
	procs   []*Process // by host
	ulps    map[int]*ULP
	records []core.MigrationRecord
	started bool

	// tracer, when set, receives one event per migration protocol stage —
	// used to reproduce the paper's Figure 3 as a timeline.
	tracer func(actor, stage, detail string)

	// placeHooks run whenever a ULP's placement commits: initial load,
	// migration acceptance at the destination, or completion (host -1).
	// The scheduler's incremental load index subscribes here.
	placeHooks []func(ulpID, host int)
}

// OnPlacement registers fn to run whenever a ULP's placement changes:
// initial placement, migration acceptance, and completion (host -1).
func (s *System) OnPlacement(fn func(ulpID, host int)) {
	s.placeHooks = append(s.placeHooks, fn)
}

func (s *System) notePlaced(ulpID, host int) {
	for _, fn := range s.placeHooks {
		fn(ulpID, host)
	}
}

// New creates a UPVM system over a PVM machine.
func New(m *pvm.Machine, cfg Config) *System {
	return &System{
		m:     m,
		cfg:   cfg.withDefaults(),
		space: NewAddressSpace(),
		ulps:  make(map[int]*ULP),
	}
}

// Machine returns the underlying PVM machine.
func (s *System) Machine() *pvm.Machine { return s.m }

// Config returns the (defaulted) cost model.
func (s *System) Config() Config { return s.cfg }

// Records returns completed ULP migrations.
func (s *System) Records() []core.MigrationRecord { return s.records }

// SetTracer installs a protocol stage tracer (nil to disable).
func (s *System) SetTracer(fn func(actor, stage, detail string)) { s.tracer = fn }

func (s *System) trace(actor, stage, detail string) {
	if s.tracer != nil {
		s.tracer(actor, stage, detail)
	}
}

// Space returns the global address-space layout manager.
func (s *System) Space() *AddressSpace { return s.space }

// ULP returns the ULP with the given id, or nil.
func (s *System) ULP(id int) *ULP { return s.ulps[id] }

// Process returns the UPVM process on the given host, or nil.
func (s *System) Process(host int) *Process {
	if host < 0 || host >= len(s.procs) {
		return nil
	}
	return s.procs[host]
}

// ULPSpec declares one ULP of an SPMD application.
type ULPSpec struct {
	// Host is the initial placement.
	Host int
	// DataBytes + HeapBytes + StackBytes sizes the ULP's private segments
	// (its migratable state).
	DataBytes  int
	HeapBytes  int
	StackBytes int
}

// StateBytes returns the ULP's total migratable segment size.
func (u ULPSpec) StateBytes() int { return u.DataBytes + u.HeapBytes + u.StackBytes }

// Start launches the SPMD application: one UPVM process on every host of
// the machine, and one ULP per spec running body(ulp, rank). It returns the
// created ULPs in rank order.
func (s *System) Start(name string, specs []ULPSpec, body func(u *ULP, rank int)) ([]*ULP, error) {
	if s.started {
		return nil, errors.New("upvm: already started")
	}
	s.started = true
	for h := 0; h < s.m.NHosts(); h++ {
		p, err := newProcess(s, h, name)
		if err != nil {
			return nil, err
		}
		s.procs = append(s.procs, p)
	}
	ulps := make([]*ULP, len(specs))
	for rank, spec := range specs {
		if spec.Host < 0 || spec.Host >= len(s.procs) {
			return nil, fmt.Errorf("upvm: ulp %d placed on missing host %d", rank, spec.Host)
		}
		u := newULP(s, rank, spec, body)
		ulps[rank] = u
		s.ulps[rank] = u
		s.procs[spec.Host].addULP(u)
	}
	return ulps, nil
}

package upvm

import (
	"testing"
	"time"

	"pvmigrate/internal/cluster"
	"pvmigrate/internal/core"
	"pvmigrate/internal/netsim"
	"pvmigrate/internal/pvm"
	"pvmigrate/internal/sim"
)

// TestFlushTimeoutRevertsULPUnderPartition pins the flush-barrier
// hardening: a peer that is alive but partitioned away never acks the
// stage-2 flush, the barrier times out instead of wedging, the captured
// ULP reverts to the source and keeps running, no migration record is
// emitted for the abort, and a retry after the partition heals succeeds
// exactly once.
func TestFlushTimeoutRevertsULPUnderPartition(t *testing.T) {
	k := sim.NewKernel()
	cl := cluster.New(k, netsim.Params{},
		cluster.DefaultHostSpec("h1"),
		cluster.DefaultHostSpec("h2"),
		cluster.DefaultHostSpec("h3"))
	s := New(pvm.NewMachine(cl, pvm.Config{}), Config{FlushTimeout: time.Second})

	var stages []string
	s.SetTracer(func(actor, stage, detail string) { stages = append(stages, stage) })

	ulps, err := s.Start("app", []ULPSpec{{Host: 0, DataBytes: mb(0.3)}}, func(u *ULP, rank int) {
		u.Compute(u.Host().Spec().Speed * 30)
	})
	if err != nil {
		t.Fatal(err)
	}
	u := ulps[0]

	// Host 2 is partitioned away; its process never sees the flush.
	k.Schedule(time.Second, func() {
		cl.Network().Partition(map[netsim.HostID]int{0: 0, 1: 0, 2: 1})
	})
	k.Schedule(2*time.Second, func() {
		if err := s.Migrate(0, 1, core.ReasonManual); err != nil {
			t.Errorf("migrate during partition: %v", err)
		}
	})
	k.Schedule(5*time.Second, func() {
		if u.Migrating() {
			t.Error("ULP still migrating 2s past the flush deadline: barrier wedged")
		}
		if got := int(u.Host().ID()); got != 0 {
			t.Errorf("aborted ULP on host %d, want reverted to 0", got)
		}
		if s.Process(0).NumULPs() != 1 {
			t.Error("aborted ULP not back in the source process table")
		}
		if len(s.Records()) != 0 {
			t.Errorf("aborted migration produced %d records, want 0", len(s.Records()))
		}
		cl.Network().Heal()
	})
	// The retry's fresh barrier must not be satisfied by stale acks from
	// the aborted one (the seq guard) — it has to complete on its own.
	k.Schedule(6*time.Second, func() {
		if err := s.Migrate(0, 2, core.ReasonManual); err != nil {
			t.Errorf("migrate after heal: %v", err)
		}
	})
	k.RunUntil(10 * time.Minute)

	if !u.Done() {
		t.Fatal("ULP never finished: lost to the aborted migration")
	}
	recs := s.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want exactly 1 (abort counts zero, retry once)", len(recs))
	}
	if recs[0].From != 0 || recs[0].To != 2 {
		t.Fatalf("record = %d→%d, want 0→2", recs[0].From, recs[0].To)
	}
	aborts := 0
	for _, st := range stages {
		if st == "2:flush-abort" {
			aborts++
		}
	}
	if aborts != 1 {
		t.Fatalf("flush-abort traced %d times, want 1", aborts)
	}
}

package upvm

import (
	"strings"
	"testing"
	"time"

	"pvmigrate/internal/cluster"
	"pvmigrate/internal/core"
	"pvmigrate/internal/netsim"
	"pvmigrate/internal/pvm"
	"pvmigrate/internal/sim"
)

func testSystem(t *testing.T, nHosts int) (*sim.Kernel, *System) {
	t.Helper()
	k := sim.NewKernel()
	specs := make([]cluster.HostSpec, nHosts)
	for i := range specs {
		specs[i] = cluster.DefaultHostSpec("host" + string(rune('1'+i)))
	}
	cl := cluster.New(k, netsim.Params{}, specs...)
	return k, New(pvm.NewMachine(cl, pvm.Config{}), Config{})
}

func mb(n float64) int { return int(n * 1e6) }

func TestAddressSpaceLayout(t *testing.T) {
	a := NewAddressSpace()
	var regions []Region
	for i := 0; i < 5; i++ {
		r, err := a.Reserve(i, mb(1)*(i+1))
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Globally unique, disjoint, ascending.
	for i := 1; i < len(regions); i++ {
		if regions[i].Base < regions[i-1].End() {
			t.Fatalf("regions overlap: %v %v", regions[i-1], regions[i])
		}
	}
	layout := a.Layout()
	if !strings.Contains(layout, "ULP0") || !strings.Contains(layout, "ULP4") {
		t.Fatalf("layout missing entries:\n%s", layout)
	}
	if _, err := a.Reserve(0, 1); err == nil {
		t.Fatal("double reservation succeeded")
	}
}

func TestAddressSpaceExhaustion(t *testing.T) {
	a := NewAddressSpace()
	// The 32-bit limit the paper mentions: huge ULPs exhaust the space.
	if _, err := a.Reserve(0, 1<<30); err != nil {
		t.Fatalf("1 GB reservation failed: %v", err)
	}
	if _, err := a.Reserve(1, 1<<30); err == nil {
		t.Fatal("second 1 GB reservation should exhaust a 1.75 GB space")
	}
}

func TestSPMDStartPlacesULPs(t *testing.T) {
	k, s := testSystem(t, 2)
	ulps, err := s.Start("app", []ULPSpec{
		{Host: 0, DataBytes: mb(0.1)},
		{Host: 0, DataBytes: mb(0.1)},
		{Host: 1, DataBytes: mb(0.1)},
	}, func(u *ULP, rank int) {})
	if err != nil {
		t.Fatal(err)
	}
	if len(ulps) != 3 {
		t.Fatalf("ulps = %d", len(ulps))
	}
	if s.Process(0).NumULPs() != 2 || s.Process(1).NumULPs() != 1 {
		t.Fatalf("placement: %d, %d", s.Process(0).NumULPs(), s.Process(1).NumULPs())
	}
	if err := s.space.Validate(); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestLocalMessageHandoff(t *testing.T) {
	k, s := testSystem(t, 2)
	var got []float64
	var isLocal bool
	_, err := s.Start("app", []ULPSpec{
		{Host: 0, DataBytes: 1000},
		{Host: 0, DataBytes: 1000},
	}, func(u *ULP, rank int) {
		switch rank {
		case 0:
			if err := u.Send(ULPTID(1), 5, core.NewBuffer().PkFloat64s([]float64{1, 2, 3})); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			_, _, r, err := u.Recv(ULPTID(0), 5)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got, _ = r.UpkFloat64s()
			l, _ := u.Stats()
			isLocal = l == 1
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got = %v", got)
	}
	if !isLocal {
		t.Fatal("same-process message did not use hand-off")
	}
}

func TestRemoteMessage(t *testing.T) {
	k, s := testSystem(t, 2)
	var got int
	var remote bool
	_, err := s.Start("app", []ULPSpec{
		{Host: 0, DataBytes: 1000},
		{Host: 1, DataBytes: 1000},
	}, func(u *ULP, rank int) {
		if rank == 0 {
			u.Send(ULPTID(1), 9, core.NewBuffer().PkInt(41))
			return
		}
		src, tag, r, err := u.Recv(core.AnyTID, core.AnyTag)
		if err != nil || src != ULPTID(0) || tag != 9 {
			t.Errorf("recv: src=%v tag=%d err=%v", src, tag, err)
			return
		}
		got, _ = r.UpkInt()
		_, rm := u.Stats()
		remote = rm == 1
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got != 41 || !remote {
		t.Fatalf("got = %d remote = %v", got, remote)
	}
}

func TestLocalFasterThanRemote(t *testing.T) {
	// The Table 3 effect: co-located ULPs communicate faster than remote
	// ones because of the zero-copy hand-off.
	measure := func(dstHost int) sim.Time {
		k, s := testSystem(t, 2)
		var elapsed sim.Time
		s.Start("app", []ULPSpec{
			{Host: 0, DataBytes: 1000},
			{Host: dstHost, DataBytes: 1000},
		}, func(u *ULP, rank int) {
			if rank == 0 {
				start := u.Proc().Now()
				u.Send(ULPTID(1), 0, core.NewBuffer().PkVirtual(100_000))
				_, _, _, err := u.Recv(ULPTID(1), 1)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				elapsed = u.Proc().Now() - start
				return
			}
			u.Recv(ULPTID(0), 0)
			u.Send(ULPTID(0), 1, core.NewBuffer().PkVirtual(100_000))
		})
		k.Run()
		return elapsed
	}
	local := measure(0)
	remote := measure(1)
	if local <= 0 || remote <= 0 {
		t.Fatalf("local=%v remote=%v", local, remote)
	}
	if local >= remote/4 {
		t.Fatalf("hand-off not much faster: local=%v remote=%v", local, remote)
	}
}

func TestNonPreemptiveScheduling(t *testing.T) {
	// Two compute-bound ULPs in one process never overlap on the CPU: the
	// process is a single Unix job, so 2×5 s of ULP work takes 10 s (not
	// the 5 s two separate processes would show... nor more).
	k, s := testSystem(t, 1)
	speed := 0.0
	var ends []sim.Time
	_, err := s.Start("app", []ULPSpec{
		{Host: 0, DataBytes: 1000},
		{Host: 0, DataBytes: 1000},
	}, func(u *ULP, rank int) {
		speed = u.Host().Spec().Speed
		if err := u.Compute(u.Host().Spec().Speed * 5); err != nil {
			t.Errorf("compute: %v", err)
		}
		ends = append(ends, u.Proc().Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	_ = speed
	if len(ends) != 2 {
		t.Fatalf("ends = %v", ends)
	}
	last := ends[0]
	if ends[1] > last {
		last = ends[1]
	}
	// Serialized: total ≈ spawn + 10 s. Allow the spawn cost margin.
	if last < 10*time.Second || last > 11*time.Second {
		t.Fatalf("two 5s ULP bursts finished at %v, want ~10s (serialized)", last)
	}
}

func TestULPMigrationDuringCompute(t *testing.T) {
	k, s := testSystem(t, 2)
	var endHost string
	ulps, err := s.Start("app", []ULPSpec{
		{Host: 0, DataBytes: mb(0.3)},
	}, func(u *ULP, rank int) {
		if err := u.Compute(u.Host().Spec().Speed * 30); err != nil {
			t.Errorf("compute: %v", err)
		}
		endHost = u.Host().Name()
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(2*time.Second, func() {
		if err := s.Migrate(0, 1, core.ReasonOwnerReclaim); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	k.Run()
	if endHost != "host2" {
		t.Fatalf("finished on %q", endHost)
	}
	if len(s.Records()) != 1 {
		t.Fatalf("records = %d", len(s.Records()))
	}
	_ = ulps
	r := s.Records()[0]
	if r.Obtrusiveness() <= 0 || r.Cost() <= r.Obtrusiveness() {
		t.Fatalf("obtr=%v cost=%v", r.Obtrusiveness(), r.Cost())
	}
}

func TestULPMigrationMatchesTable4(t *testing.T) {
	// Paper Table 4: 0.6 MB data (slave ULP holds ~0.3 MB): obtrusiveness
	// 1.67 s, migration 6.88 s.
	k, s := testSystem(t, 2)
	s.Start("app", []ULPSpec{
		{Host: 0, DataBytes: mb(0.3)},
	}, func(u *ULP, rank int) {
		u.Compute(u.Host().Spec().Speed * 60)
	})
	k.Schedule(2*time.Second, func() { s.Migrate(0, 1, core.ReasonManual) })
	k.RunUntil(2 * time.Minute)
	if len(s.Records()) != 1 {
		t.Fatal("migration did not complete")
	}
	r := s.Records()[0]
	obtr, cost := r.Obtrusiveness().Seconds(), r.Cost().Seconds()
	if obtr < 1.2 || obtr > 2.2 {
		t.Errorf("obtrusiveness = %.2f s, paper 1.67 s", obtr)
	}
	if cost < 5.5 || cost > 8.5 {
		t.Errorf("migration cost = %.2f s, paper 6.88 s", cost)
	}
}

func TestULPTIDStableAcrossMigration(t *testing.T) {
	k, s := testSystem(t, 2)
	var tidBefore, tidAfter core.TID
	s.Start("app", []ULPSpec{{Host: 0, DataBytes: mb(0.1)}}, func(u *ULP, rank int) {
		tidBefore = u.Mytid()
		u.Compute(u.Host().Spec().Speed * 20)
		tidAfter = u.Mytid()
	})
	k.Schedule(time.Second, func() { s.Migrate(0, 1, core.ReasonManual) })
	k.Run()
	if tidBefore != tidAfter {
		t.Fatalf("ULP tid changed: %v → %v", tidBefore, tidAfter)
	}
	if len(s.Records()) != 1 {
		t.Fatal("no migration")
	}
}

func TestMessagesFollowMigratedULP(t *testing.T) {
	// A sender keeps sending to a ULP while it migrates: nothing lost,
	// per-sender order preserved.
	k, s := testSystem(t, 2)
	const n = 30
	var got []int
	s.Start("app", []ULPSpec{
		{Host: 0, DataBytes: mb(0.3)},  // receiver: migrates 0→1
		{Host: 1, DataBytes: mb(0.01)}, // sender
	}, func(u *ULP, rank int) {
		if rank == 0 {
			for i := 0; i < n; i++ {
				_, _, r, err := u.Recv(core.AnyTID, core.AnyTag)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				v, _ := r.UpkInt()
				got = append(got, v)
			}
			return
		}
		for i := 0; i < n; i++ {
			if err := u.Send(ULPTID(0), 0, core.NewBuffer().PkInt(i).PkVirtual(10_000)); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			u.Proc().Sleep(300 * time.Millisecond)
		}
	})
	k.Schedule(2*time.Second, func() { s.Migrate(0, 1, core.ReasonManual) })
	k.Run()
	if len(got) != n {
		t.Fatalf("received %d of %d: %v", len(got), n, got)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestMigrateValidation(t *testing.T) {
	k, s := testSystem(t, 2)
	s.Start("app", []ULPSpec{{Host: 0, DataBytes: 1000}}, func(u *ULP, rank int) {
		u.Compute(u.Host().Spec().Speed)
	})
	if err := s.Migrate(9, 1, core.ReasonManual); err == nil {
		t.Fatal("unknown ULP migrated")
	}
	if err := s.Migrate(0, 0, core.ReasonManual); err == nil {
		t.Fatal("same-host migration allowed")
	}
	if err := s.Migrate(0, 7, core.ReasonManual); err == nil {
		t.Fatal("missing host allowed")
	}
	k.Run()
}

func TestObtrusivenessScalesWithULPSize(t *testing.T) {
	measure := func(bytes int) core.MigrationRecord {
		k, s := testSystem(t, 2)
		s.Start("app", []ULPSpec{{Host: 0, DataBytes: bytes}}, func(u *ULP, rank int) {
			u.Compute(u.Host().Spec().Speed * 600)
		})
		k.Schedule(time.Second, func() { s.Migrate(0, 1, core.ReasonManual) })
		k.RunUntil(10 * time.Minute)
		if len(s.Records()) != 1 {
			t.Fatalf("no record for %d bytes", bytes)
		}
		return s.Records()[0]
	}
	small := measure(mb(0.3))
	large := measure(mb(2.1))
	if small.Obtrusiveness() >= large.Obtrusiveness() {
		t.Fatalf("obtrusiveness does not scale: %v vs %v",
			small.Obtrusiveness(), large.Obtrusiveness())
	}
	ratio := float64(large.Obtrusiveness()) / float64(small.Obtrusiveness())
	if ratio < 4 || ratio > 10 {
		t.Fatalf("scaling ratio = %.1f, want ~7 (linear in size)", ratio)
	}
}

func TestBoundaryOnlyMigrationWaitsForReceive(t *testing.T) {
	// DPC-style boundary migration (paper §5.0): the ULP is captured only
	// when it reaches a receive, so the response latency includes the rest
	// of the compute segment — unlike the asynchronous default.
	measure := func(boundaryOnly bool) sim.Time {
		k := sim.NewKernel()
		cl := cluster.New(k, netsim.Params{},
			cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1"))
		sys := New(pvm.NewMachine(cl, pvm.Config{}), Config{BoundaryOnly: boundaryOnly})
		// One worker computing 20 s segments between receives, plus a feeder.
		s2 := sys
		_, err := s2.Start("app", []ULPSpec{
			{Host: 0, DataBytes: mb(0.3)},
			{Host: 1, DataBytes: 1000},
		}, func(u *ULP, rank int) {
			if rank == 1 {
				for i := 0; i < 3; i++ {
					u.Send(ULPTID(0), 1, core.NewBuffer().PkInt(i))
				}
				return
			}
			for i := 0; i < 3; i++ {
				if _, _, _, err := u.Recv(core.AnyTID, 1); err != nil {
					return
				}
				if err := u.Compute(u.Host().Spec().Speed * 20); err != nil {
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// Signal mid-segment: ~5 s into a 20 s compute.
		k.Schedule(6*time.Second, func() { s2.Migrate(0, 1, core.ReasonOwnerReclaim) })
		k.RunUntil(10 * time.Minute)
		if len(s2.Records()) != 1 {
			t.Fatalf("boundaryOnly=%v: migrations = %d", boundaryOnly, len(s2.Records()))
		}
		return s2.Records()[0].Obtrusiveness()
	}
	async := measure(false)
	boundary := measure(true)
	// The boundary policy must pay (most of) the remaining segment before
	// state capture: expect roughly 14-15 s of extra latency.
	if boundary < async+10*time.Second {
		t.Fatalf("boundary-only obtrusiveness %v not ≫ asynchronous %v", boundary, async)
	}
}

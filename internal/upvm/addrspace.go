package upvm

import (
	"fmt"
	"sort"
)

// Region is a ULP's reserved virtual address range.
type Region struct {
	Base uint64
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Overlaps reports whether two regions share any address.
func (r Region) Overlaps(o Region) bool {
	return r.Base < o.End() && o.Base < r.End()
}

func (r Region) String() string {
	return fmt.Sprintf("[0x%08x, 0x%08x)", r.Base, r.End())
}

// AddressSpace is the global virtual-address layout manager. Its one job is
// the paper's pointer-safety invariant: every ULP's region is reserved at
// the same addresses in every process of the application, so migrating a
// ULP never requires pointer modification. (The paper also notes the
// downside this fixes onto 32-bit machines: the per-process address space
// bounds the total size of all ULPs — see Capacity.)
type AddressSpace struct {
	base    uint64
	limit   uint64
	next    uint64
	regions map[int]Region // ulp id → region
}

// Defaults model a 1994 32-bit HP-UX process: ~1.75 GB of usable private
// address space above the text segment.
const (
	defaultBase  = 0x4000_0000
	defaultLimit = 0xb000_0000
)

// NewAddressSpace returns an empty layout with the 32-bit HP-UX defaults.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		base:    defaultBase,
		limit:   defaultLimit,
		next:    defaultBase,
		regions: make(map[int]Region),
	}
}

// Reserve allocates a globally unique region of the given size for a ULP.
// Alignment is 8 KiB (the HP-PA page size of the era).
func (a *AddressSpace) Reserve(ulpID int, size int) (Region, error) {
	if _, ok := a.regions[ulpID]; ok {
		return Region{}, fmt.Errorf("upvm: ulp %d already has a region", ulpID)
	}
	const page = 8 << 10
	sz := (uint64(size) + page - 1) / page * page
	if sz == 0 {
		sz = page
	}
	if a.next+sz > a.limit {
		return Region{}, fmt.Errorf("upvm: address space exhausted (%d ULPs, next=0x%x)",
			len(a.regions), a.next)
	}
	r := Region{Base: a.next, Size: sz}
	a.next += sz
	a.regions[ulpID] = r
	return r, nil
}

// Region returns a ULP's reserved region.
func (a *AddressSpace) Region(ulpID int) (Region, bool) {
	r, ok := a.regions[ulpID]
	return r, ok
}

// Capacity returns the remaining reservable bytes — the paper's "limit on
// the number of ULPs that could be created depending on the memory
// requirements of each ULP".
func (a *AddressSpace) Capacity() uint64 { return a.limit - a.next }

// Layout renders the allocation map (one line per ULP, ascending base),
// reproducing Figure 2's picture of globally unique ULP regions.
func (a *AddressSpace) Layout() string {
	ids := make([]int, 0, len(a.regions))
	for id := range a.regions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return a.regions[ids[i]].Base < a.regions[ids[j]].Base })
	out := fmt.Sprintf("address space %s, %d ULPs, %d MB free\n",
		Region{Base: a.base, Size: a.limit - a.base}, len(ids), a.Capacity()>>20)
	for _, id := range ids {
		r := a.regions[id]
		out += fmt.Sprintf("  ULP%-3d %s  (%d KB)\n", id, r, r.Size>>10)
	}
	return out
}

// Validate checks the global invariant: all regions pairwise disjoint and
// inside the managed range. It returns nil when the layout is sound.
func (a *AddressSpace) Validate() error {
	ids := make([]int, 0, len(a.regions))
	for id := range a.regions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for i, id := range ids {
		r := a.regions[id]
		if r.Base < a.base || r.End() > a.limit {
			return fmt.Errorf("upvm: ULP%d region %s outside managed range", id, r)
		}
		for _, jd := range ids[i+1:] {
			if r.Overlaps(a.regions[jd]) {
				return fmt.Errorf("upvm: ULP%d and ULP%d regions overlap", id, jd)
			}
		}
	}
	return nil
}

package upvm

import (
	"testing"
	"testing/quick"
	"time"

	"pvmigrate/internal/core"
)

func TestULPTIDRoundTrip(t *testing.T) {
	f := func(id uint16) bool {
		tid := ULPTID(int(id))
		got, ok := ULPFromTID(tid)
		return ok && got == int(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := ULPFromTID(core.MakeTID(0, 1)); ok {
		t.Fatal("task tid decoded as ULP")
	}
	if _, ok := ULPFromTID(core.NoTID); ok {
		t.Fatal("NoTID decoded as ULP")
	}
}

func TestULPNRecv(t *testing.T) {
	// Sender and receiver on different hosts: an NRecv poller keeps its
	// process's run token (non-preemptive scheduling), so a co-located
	// sender could never run.
	k, s := testSystem(t, 2)
	var before, after bool
	var got int
	s.Start("app", []ULPSpec{
		{Host: 0, DataBytes: 1000},
		{Host: 1, DataBytes: 1000},
	}, func(u *ULP, rank int) {
		if rank == 1 {
			u.Proc().Sleep(time.Second)
			u.Send(ULPTID(0), 4, core.NewBuffer().PkInt(11))
			return
		}
		_, _, _, ok, _ := u.NRecv(core.AnyTID, core.AnyTag)
		before = ok
		u.Proc().Sleep(3 * time.Second)
		_, _, r, ok, _ := u.NRecv(core.AnyTID, 4)
		after = ok
		if ok {
			got, _ = r.UpkInt()
		}
	})
	k.Run()
	if before || !after || got != 11 {
		t.Fatalf("before=%v after=%v got=%d", before, after, got)
	}
}

func TestULPAccessors(t *testing.T) {
	k, s := testSystem(t, 2)
	ulps, err := s.Start("app", []ULPSpec{
		{Host: 1, DataBytes: 50_000, HeapBytes: 10_000, StackBytes: 5_000},
	}, func(u *ULP, rank int) {
		if u.ID() != 0 || u.Host().Name() != "host2" {
			t.Errorf("accessors: id=%d host=%s", u.ID(), u.Host().Name())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	u := ulps[0]
	if u.StateBytes() != 65_000 {
		t.Fatalf("StateBytes = %d", u.StateBytes())
	}
	if u.Region().Size == 0 {
		t.Fatal("no region reserved")
	}
	if u.Process() != s.Process(1) {
		t.Fatal("Process accessor wrong")
	}
	if s.ULP(0) != u || s.ULP(9) != nil {
		t.Fatal("System.ULP lookup wrong")
	}
	if s.Process(-1) != nil || s.Process(9) != nil {
		t.Fatal("out-of-range Process not nil")
	}
	k.Run()
	if !u.Done() {
		t.Fatal("ULP not done after run")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	_, s := testSystem(t, 1)
	if _, err := s.Start("a", nil, func(u *ULP, rank int) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start("b", nil, func(u *ULP, rank int) {}); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestBadPlacementRejected(t *testing.T) {
	_, s := testSystem(t, 1)
	if _, err := s.Start("a", []ULPSpec{{Host: 7}}, func(u *ULP, rank int) {}); err == nil {
		t.Fatal("placement on missing host accepted")
	}
}

func TestSendToUnknownULP(t *testing.T) {
	k, s := testSystem(t, 1)
	var err1, err2 error
	s.Start("app", []ULPSpec{{Host: 0, DataBytes: 1000}}, func(u *ULP, rank int) {
		err1 = u.Send(ULPTID(42), 0, core.NewBuffer())
		err2 = u.Send(core.MakeTID(0, 1), 0, core.NewBuffer()) // not a ULP tid
	})
	k.Run()
	if err1 == nil || err2 == nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
}

func TestRegionStringAndOverlap(t *testing.T) {
	a := Region{Base: 0x1000, Size: 0x1000}
	b := Region{Base: 0x2000, Size: 0x1000}
	c := Region{Base: 0x1800, Size: 0x100}
	if a.Overlaps(b) || !a.Overlaps(c) {
		t.Fatal("overlap logic wrong")
	}
	if a.End() != 0x2000 {
		t.Fatalf("End = %#x", a.End())
	}
	if s := a.String(); s == "" {
		t.Fatal("empty region string")
	}
}

package upvm

import (
	"fmt"
	"testing"
	"time"

	"pvmigrate/internal/core"
	"pvmigrate/internal/sim"
)

// TestULPStormRing runs a ring of ULPs over 3 hosts while random ULP
// migrations reshuffle them: messages must survive with per-sender
// ordering, and all migrations must complete.
func TestULPStormRing(t *testing.T) {
	const (
		nHosts = 3
		nULPs  = 5
		rounds = 20
	)
	for trial := 0; trial < 3; trial++ {
		k, s := testSystem(t, nHosts)
		rng := sim.NewRNG(uint64(7000 + trial))

		received := make([][]int, nULPs)
		var done int
		specs := make([]ULPSpec, nULPs)
		for i := range specs {
			specs[i] = ULPSpec{Host: i % nHosts, DataBytes: 200_000}
		}
		_, err := s.Start("ring", specs, func(u *ULP, rank int) {
			next := ULPTID((rank + 1) % nULPs)
			for r := 0; r < rounds; r++ {
				if err := u.Compute(u.Host().Spec().Speed * 0.2); err != nil {
					t.Errorf("ulp %d compute: %v", rank, err)
					return
				}
				if err := u.Send(next, 5, core.NewBuffer().PkInt(r).PkVirtual(10_000)); err != nil {
					t.Errorf("ulp %d send: %v", rank, err)
					return
				}
				_, _, rd, err := u.Recv(core.AnyTID, 5)
				if err != nil {
					t.Errorf("ulp %d recv: %v", rank, err)
					return
				}
				v, _ := rd.UpkInt()
				received[rank] = append(received[rank], v)
			}
			done++
		})
		if err != nil {
			t.Fatal(err)
		}

		attempts := 0
		var storm func()
		storm = func() {
			if attempts >= 10 {
				return
			}
			attempts++
			id := rng.Intn(nULPs)
			u := s.ULP(id)
			if u != nil && !u.Migrating() && !u.Done() {
				dest := rng.Intn(nHosts)
				if dest != int(u.Host().ID()) {
					s.Migrate(id, dest, core.ReasonRebalance)
				}
			}
			k.Schedule(3*time.Second, storm)
		}
		k.Schedule(2*time.Second, storm)

		k.RunUntil(time.Hour)

		if done != nULPs {
			t.Fatalf("trial %d: %d of %d ULPs finished; blocked: %v",
				trial, done, nULPs, k.Blocked())
		}
		for i, seq := range received {
			if len(seq) != rounds {
				t.Fatalf("trial %d: ulp %d received %d of %d", trial, i, len(seq), rounds)
			}
			for r, v := range seq {
				if v != r {
					t.Fatalf("trial %d: ulp %d out of order: %v", trial, i, seq)
				}
			}
		}
		if len(s.Records()) == 0 {
			t.Fatalf("trial %d: storm produced no migrations", trial)
		}
		for _, r := range s.Records() {
			if r.Cost() <= 0 {
				t.Fatalf("trial %d: bad record %+v", trial, r)
			}
		}
		// No inbound transfers left dangling.
		for h := 0; h < nHosts; h++ {
			if n := len(s.Process(h).inbound); n != 0 {
				t.Fatalf("trial %d: %d dangling inbound transfers at host %d", trial, n, h)
			}
		}
	}
}

// TestULPMigratesThroughAllHosts moves one ULP around every host in turn
// while its peer keeps talking to it at its stable tid.
func TestULPMigratesThroughAllHosts(t *testing.T) {
	k, s := testSystem(t, 2)
	const probes = 6
	var echoes []int
	s.Start("pair", []ULPSpec{
		{Host: 0, DataBytes: 150_000}, // nomad (echo server)
		{Host: 1, DataBytes: 10_000},  // prober
	}, func(u *ULP, rank int) {
		if rank == 0 {
			for i := 0; i < probes; i++ {
				src, _, r, err := u.Recv(core.AnyTID, 1)
				if err != nil {
					t.Errorf("nomad recv: %v", err)
					return
				}
				v, _ := r.UpkInt()
				if err := u.Send(src, 2, core.NewBuffer().PkInt(v+100)); err != nil {
					t.Errorf("nomad send: %v", err)
					return
				}
			}
			return
		}
		for i := 0; i < probes; i++ {
			u.Proc().Sleep(20 * time.Second)
			if err := u.Send(ULPTID(0), 1, core.NewBuffer().PkInt(i)); err != nil {
				t.Errorf("probe send %d: %v", i, err)
				return
			}
			_, _, r, err := u.Recv(ULPTID(0), 2)
			if err != nil {
				t.Errorf("probe recv %d: %v", i, err)
				return
			}
			v, _ := r.UpkInt()
			echoes = append(echoes, v)
		}
	})
	for i := 0; i < probes-1; i++ {
		dest := (i + 1) % 2
		k.Schedule(time.Duration(10+20*i)*time.Second, func() {
			s.Migrate(0, dest, core.ReasonRebalance)
		})
	}
	k.RunUntil(time.Hour)
	if len(echoes) != probes {
		t.Fatalf("echoes = %v (blocked: %v)", echoes, k.Blocked())
	}
	for i, v := range echoes {
		if v != i+100 {
			t.Fatalf("echo %d = %d", i, v)
		}
	}
	if got := len(s.Records()); got != probes-1 {
		t.Fatalf("migrations = %d, want %d", got, probes-1)
	}
	if fmt.Sprint(s.ULP(0).Mytid()) != fmt.Sprint(ULPTID(0)) {
		t.Fatal("ULP tid changed")
	}
}

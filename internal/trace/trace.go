// Package trace records protocol stage timelines. The migration systems
// emit one event per protocol stage, which reproduces the paper's Figure 1
// (MPVM migration stages) and Figure 3 (UPVM migration stages) as textual
// timelines with virtual timestamps.
package trace

import (
	"fmt"
	"strings"

	"pvmigrate/internal/sim"
)

// Event is one timeline entry.
type Event struct {
	At     sim.Time
	Actor  string // who performed the step (GS, mpvmd1, VP1, skeleton, ...)
	Stage  string // protocol stage label
	Detail string
}

// Log collects events in emission order.
type Log struct {
	events []Event
}

// Record appends an event.
func (l *Log) Record(at sim.Time, actor, stage, detail string) {
	l.events = append(l.events, Event{At: at, Actor: actor, Stage: stage, Detail: detail})
}

// Events returns the recorded events.
func (l *Log) Events() []Event { return l.events }

// Len returns the event count.
func (l *Log) Len() int { return len(l.events) }

// Since returns the events recorded at index n and later — the delta a
// streaming consumer that has already seen the first n events needs. An n
// beyond the log returns nil.
func (l *Log) Since(n int) []Event {
	if n < 0 {
		n = 0
	}
	if n >= len(l.events) {
		return nil
	}
	return l.events[n:]
}

// Stages returns the distinct stage labels in first-occurrence order.
func (l *Log) Stages() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range l.events {
		if !seen[e.Stage] {
			seen[e.Stage] = true
			out = append(out, e.Stage)
		}
	}
	return out
}

// Filter returns a new Log holding only events whose stage starts with one
// of the given prefixes (e.g. "ft:", "ckpt:", "fault:" for the recovery
// timeline of a fault-tolerant run).
func (l *Log) Filter(prefixes ...string) *Log {
	out := &Log{}
	for _, e := range l.events {
		for _, p := range prefixes {
			if strings.HasPrefix(e.Stage, p) {
				out.events = append(out.events, e)
				break
			}
		}
	}
	return out
}

// Timeline renders the log as an aligned textual timeline.
func (l *Log) Timeline(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(l.events) == 0 {
		b.WriteString("  (no events)\n")
		return b.String()
	}
	t0 := l.events[0].At
	for _, e := range l.events {
		fmt.Fprintf(&b, "  %10.4fs  %-10s %-22s %s\n",
			sim.Seconds(e.At-t0), e.Actor, e.Stage, e.Detail)
	}
	return b.String()
}

package trace

import (
	"strings"
	"testing"
	"time"
)

func TestLogRecordAndStages(t *testing.T) {
	var l Log
	l.Record(time.Second, "GS", "1:event", "go")
	l.Record(2*time.Second, "d1", "2:flush", "")
	l.Record(3*time.Second, "d1", "2:flush", "again")
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	stages := l.Stages()
	if len(stages) != 2 || stages[0] != "1:event" || stages[1] != "2:flush" {
		t.Fatalf("stages = %v", stages)
	}
}

func TestTimelineRendering(t *testing.T) {
	var l Log
	l.Record(time.Second, "GS", "1:event", "start")
	l.Record(1500*time.Millisecond, "vp", "2:move", "bytes")
	out := l.Timeline("My timeline")
	for _, want := range []string{"My timeline", "0.0000s", "0.5000s", "GS", "2:move", "bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	var l Log
	out := l.Timeline("empty")
	if !strings.Contains(out, "no events") {
		t.Fatalf("empty timeline = %q", out)
	}
}

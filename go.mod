module pvmigrate

go 1.22

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// migrate-current-state vs checkpoint policy trade-off (paper §5.0's Condor
// comparison), daemon vs direct message routing, ADM's inner-loop chunk
// size (rapid response vs overhead), and the UPVM prototype's accept
// mechanism vs a tuned one (the optimization the authors said was under
// way).
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"pvmigrate/internal/checkpoint"
	"pvmigrate/internal/harness"
	"pvmigrate/internal/sim"
	"pvmigrate/internal/upvm"
)

// BenchmarkAblation_CheckpointVsMigrate compares the paper's
// migrate-current-state policy against Condor-style periodic checkpointing
// for the same evicted 300 s job: obtrusiveness, total completion, lost
// work.
func BenchmarkAblation_CheckpointVsMigrate(b *testing.B) {
	evict := 150 * time.Second
	b.Run("migrate-current-state", func(b *testing.B) {
		var res checkpoint.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = checkpoint.RunMigrateCurrent(checkpoint.Params{}, evict)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.Obtrusiveness.Seconds(), "obtrusiveness-vsec")
		b.ReportMetric(res.Completion.Seconds(), "completion-vsec")
		b.ReportMetric(res.LostWorkFlops/1e6, "lost-mflops")
	})
	for _, interval := range []time.Duration{20 * time.Second, time.Minute, 4 * time.Minute} {
		b.Run(fmt.Sprintf("checkpoint-every-%s", interval), func(b *testing.B) {
			var res checkpoint.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = checkpoint.RunCheckpointed(checkpoint.Params{Interval: interval}, evict)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Obtrusiveness.Seconds(), "obtrusiveness-vsec")
			b.ReportMetric(res.Completion.Seconds(), "completion-vsec")
			b.ReportMetric(res.LostWorkFlops/1e6, "lost-mflops")
		})
	}
}

// BenchmarkAblation_DirectVsDaemonRoute measures the Opt quiet case under
// the two PVM routing modes: every data message via the pvmds (default)
// versus task-to-task TCP (PvmRouteDirect).
func BenchmarkAblation_DirectVsDaemonRoute(b *testing.B) {
	for _, direct := range []bool{false, true} {
		name := "daemon-route"
		if direct {
			name = "direct-route"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				out := harness.RunPVM(harness.Scenario{
					TotalBytes: 600_000, Iterations: 4, Direct: direct,
				})
				if out.Err != nil {
					b.Fatal(out.Err)
				}
				elapsed = out.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "vsec")
		})
	}
}

// BenchmarkAblation_ADMChunkSize sweeps ADMopt's inner-loop granularity:
// smaller chunks react to migration events faster (lower withdrawal cost)
// but pay more flag checks; larger chunks are cheap but sluggish — the
// paper's "rapid response" requirement made concrete.
func BenchmarkAblation_ADMChunkSize(b *testing.B) {
	for _, chunk := range []int{25, 100, 400, 1600} {
		b.Run(fmt.Sprintf("chunk-%d", chunk), func(b *testing.B) {
			var cost, quiet float64
			for i := 0; i < b.N; i++ {
				out := harness.RunADM(harness.Scenario{
					TotalBytes: 4_200_000, Iterations: 8,
					MigrateAt: 6 * time.Second, ADMChunk: chunk,
				})
				if out.Err != nil {
					b.Fatal(out.Err)
				}
				if len(out.Records) != 1 {
					b.Fatalf("withdrawals = %d", len(out.Records))
				}
				cost = out.Records[0].Cost().Seconds()
				quiet = out.Elapsed.Seconds()
			}
			b.ReportMetric(cost, "withdrawal-vsec")
			b.ReportMetric(quiet, "runtime-vsec")
		})
	}
}

// BenchmarkAblation_UPVMAcceptTuned contrasts the measured 1994 prototype
// (slow pkbyte transfer, very slow accept) with a tuned implementation that
// moves ULP state at wire speed and accepts at memory speed — what the
// authors' in-progress optimization could have achieved.
func BenchmarkAblation_UPVMAcceptTuned(b *testing.B) {
	configs := map[string]*upvm.Config{
		"prototype-1994": nil, // fitted defaults
		"tuned": {
			XferBps:   950e3, // wire-limited, like MPVM's transfer
			AcceptBps: 12e6,  // memory-copy placement
		},
	}
	for name, cfg := range configs {
		b.Run(name, func(b *testing.B) {
			var obtr, cost float64
			for i := 0; i < b.N; i++ {
				out := harness.RunUPVM(harness.Scenario{
					TotalBytes: 600_000, Iterations: 6,
					MigrateAt: 2 * time.Second, MigrateTo: 0,
					UPVM: cfg,
				})
				if out.Err != nil {
					b.Fatal(out.Err)
				}
				if len(out.Records) != 1 {
					b.Fatalf("migrations = %d", len(out.Records))
				}
				obtr = out.Records[0].Obtrusiveness().Seconds()
				cost = out.Records[0].Cost().Seconds()
			}
			b.ReportMetric(obtr, "obtrusiveness-vsec")
			b.ReportMetric(cost, "migration-vsec")
		})
	}
}

// BenchmarkExtension_Granularity quantifies §3.4's qualitative claim: with
// one host at half speed, UPVM's six ULPs placed 4:2 beat MPVM's two
// evenly-split processes by ~1.5x, because finer work units can match the
// effective speed ratio.
func BenchmarkExtension_Granularity(b *testing.B) {
	var res harness.GranularityResult
	for i := 0; i < b.N; i++ {
		res = harness.GranularityExperiment()
	}
	b.ReportMetric(res.MPVMCoarse.Seconds(), "mpvm-2vp-vsec")
	b.ReportMetric(res.UPVMFine.Seconds(), "upvm-6ulp-vsec")
	b.ReportMetric(float64(res.MPVMCoarse)/float64(res.UPVMFine), "speedup")
}

// BenchmarkExtension_MigrationUnderCrossTraffic measures how shared-Ethernet
// contention (the paper's "network bandwidth fluctuates") stretches MPVM
// migration: the state transfer competes with background frames.
func BenchmarkExtension_MigrationUnderCrossTraffic(b *testing.B) {
	for _, u := range []float64{0, 0.3, 0.6} {
		b.Run(fmt.Sprintf("wire-%.0f%%-busy", u*100), func(b *testing.B) {
			var obtr float64
			for i := 0; i < b.N; i++ {
				out := harness.RunMPVM(harness.Scenario{
					TotalBytes: 4_200_000, Iterations: 10,
					MigrateAt: 8 * time.Second, MigrateTo: 0,
					CrossTraffic: u,
				})
				if out.Err != nil {
					b.Fatal(out.Err)
				}
				if len(out.Records) != 1 {
					b.Fatalf("migrations = %d", len(out.Records))
				}
				obtr = out.Records[0].Obtrusiveness().Seconds()
			}
			b.ReportMetric(obtr, "obtrusiveness-vsec")
		})
	}
}

// BenchmarkExtension_ADMRebalance quantifies ADM's load-balancing accuracy
// (§3.4.3): one power-weighted repartition on a half-speed host recovers
// most of the granularity speedup without moving any process.
func BenchmarkExtension_ADMRebalance(b *testing.B) {
	load := map[int]int{1: 1}
	for _, rebalance := range []bool{false, true} {
		name := "static-even-split"
		if rebalance {
			name = "rebalanced-at-8s"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				sc := harness.Scenario{TotalBytes: 4_200_000, Iterations: 8, BackgroundLoad: load}
				if rebalance {
					sc.MigrateAt = 8 * time.Second
					sc.MigrateSlave = 1
					sc.ADMRebalance = true
				}
				out := harness.RunADM(sc)
				if out.Err != nil {
					b.Fatal(out.Err)
				}
				elapsed = out.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "vsec")
		})
	}
}
